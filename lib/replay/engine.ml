(* The replay engine: offline re-verification of a recorded trap
   stream against the real monitor.

   The monitor's verdict is a pure function of the deployed metadata
   and the per-trap snapshot, and the machine model is deterministic.
   Replay therefore re-executes the recorded configuration from
   scratch — same program, same protect bundle, same monitor knobs —
   but swaps the monitor's trap source so that every register file and
   stack snapshot is *injected from the trace* (charging identical
   modelled costs via [Ptrace.inject_*]) instead of read from the
   tracee.  The monitor re-judges each trap on its real verification
   path; a wrapped tracer hook compares the fresh event against the
   recorded one and then returns the *recorded* verdict, so control
   flow always follows the recorded run and one corrupted record
   cannot derail the comparison of everything after it. *)

module Drivers = Workloads.Drivers
module Runner = Attacks.Runner
module Event = Obs.Event
module Ptrace = Kernel.Ptrace

(* ------------------------------------------------------------------ *)
(* Name registries.  The header stores short stable keys; recording
   and replay resolve them through the same tables, so both sides
   always build the same run. *)

let defense_table =
  [
    ("vanilla", Drivers.Vanilla);
    ("cfi", Drivers.Llvm_cfi);
    ("cet", Drivers.Cet_only);
    ("ct", Drivers.Bastion_ct);
    ("ct-cf", Drivers.Bastion_ct_cf);
    ("full", Drivers.Bastion_full);
    ("fs-off", Drivers.Bastion_fs Bastion.Monitor.Fs_off);
    ("fs-hook", Drivers.Bastion_fs Bastion.Monitor.Fs_hook_only);
    ("fs-fetch", Drivers.Bastion_fs Bastion.Monitor.Fs_fetch_only);
    ("fs-full", Drivers.Bastion_fs Bastion.Monitor.Fs_full);
  ]

let defense_key (d : Drivers.defense) : string =
  fst (List.find (fun (_, d') -> d' = d) defense_table)

let defense_of_key key =
  Option.map snd (List.find_opt (fun (k, _) -> String.equal k key) defense_table)

let config_table =
  [
    ("none", Runner.Undefended);
    ("ct", Runner.Only_ct);
    ("cf", Runner.Only_cf);
    ("ai", Runner.Only_ai);
    ("full", Runner.Full_bastion);
  ]

let config_key (c : Runner.config) : string =
  fst (List.find (fun (_, c') -> c' = c) config_table)

let config_of_key key =
  Option.map snd (List.find_opt (fun (k, _) -> String.equal k key) config_table)

let scales = [ "default"; "small" ]

(* Golden-corpus scale: the models' [small] parameter sets — small
   enough to check in and to replay in a unit test, large enough to
   exercise accept/read/write/mprotect and the verdict cache.  Shared
   with the fleet harness, which harvests its per-trap service
   profiles from the same runs. *)
let nginx_small = Workloads.Nginx_model.small
let sqlite_small = Workloads.Sqlite_model.small
let vsftpd_small = Workloads.Vsftpd_model.small

let app_of ~name ~scale : (Drivers.app, string) result =
  if not (List.mem scale scales) then
    Error (Printf.sprintf "unknown scale %S (known: %s)" scale
             (String.concat ", " scales))
  else
    match (name, scale) with
    | "nginx", "default" -> Ok (Drivers.nginx ())
    | "nginx", "small" -> Ok (Drivers.nginx ~params:nginx_small ())
    | "sqlite", "default" -> Ok (Drivers.sqlite ())
    | "sqlite", "small" -> Ok (Drivers.sqlite ~params:sqlite_small ())
    | "vsftpd", "default" -> Ok (Drivers.vsftpd ())
    | "vsftpd", "small" -> Ok (Drivers.vsftpd ~params:vsftpd_small ())
    | _ -> Error (Printf.sprintf "unknown app %S (known: nginx, sqlite, vsftpd)" name)

let attack_of ~id : (Attacks.Attack.t, string) result =
  match
    List.find_opt (fun (a : Attacks.Attack.t) -> String.equal a.a_id id)
      Attacks.Catalog.all
  with
  | Some a -> Ok a
  | None -> Error (Printf.sprintf "unknown attack id %S (see `bastion list`)" id)

let malformed ~file msg = raise (Trace.Malformed { file; line = 1; msg })

let fingerprint_of (mon : Bastion.Monitor.t) =
  Bastion.Metadata.fingerprint mon.Bastion.Monitor.meta

(* ------------------------------------------------------------------ *)
(* Recording *)

(* Default-scale SQLite records ~116k traps; give the audit ring ample
   headroom so a recorded stream is never silently truncated (a
   dropped-oldest ring would break seq contiguity and the reader would
   reject the file). *)
let recording_ring_capacity = 1 lsl 21

let write_trace ~recorder ~header ~path =
  let dropped = Obs.Recorder.events_dropped recorder in
  if dropped > 0 then
    failwith
      (Printf.sprintf
         "recording dropped %d events (ring too small); refusing to write an \
          unreplayable trace to %s"
         dropped path);
  Obs.Recorder.write_jsonl ~header:(Trace.header_to_json header) recorder path

let record_run ?(trap_cache = true) ?(pre_resolve = false) ?prefilter ~app
    ~scale ~defense ~path () : Drivers.measurement =
  let a =
    match app_of ~name:app ~scale with
    | Ok a -> a
    | Error msg -> malformed ~file:path msg
  in
  let recorder =
    Obs.Recorder.create ~tracing:true ~ring_capacity:recording_ring_capacity ()
  in
  let m = Drivers.run ~trap_cache ~pre_resolve ?prefilter ~recorder a defense in
  let header =
    {
      Trace.h_version = Trace.current_version;
      h_kind = Trace.Run { app; defense = defense_key defense; scale };
      h_trap_cache = trap_cache;
      h_pre_resolve = pre_resolve;
      h_prefilter = prefilter;
      h_fingerprint =
        (match m.Drivers.m_monitor with
        | Some mon -> fingerprint_of mon
        | None -> "-");
      h_against = None;
      h_traps = List.length (Obs.Recorder.trap_events recorder);
      h_cycles = m.Drivers.m_cycles;
    }
  in
  write_trace ~recorder ~header ~path;
  m

let record_attack ?(trap_cache = true) ?(pre_resolve = false) ?prefilter
    ~attack_id ~config ~path () : Runner.outcome =
  (match config with
  | Runner.Undefended ->
    malformed ~file:path "undefended attack runs have no monitor to record"
  | _ -> ());
  let attack =
    match attack_of ~id:attack_id with
    | Ok a -> a
    | Error msg -> malformed ~file:path msg
  in
  let recorder =
    Obs.Recorder.create ~tracing:true ~ring_capacity:recording_ring_capacity ()
  in
  let fp = ref "-" in
  let machine : Machine.t option ref = ref None in
  let on_session (s : Bastion.Api.session) =
    fp := fingerprint_of s.Bastion.Api.monitor;
    machine := Some s.Bastion.Api.machine
  in
  let outcome =
    Runner.run ~trap_cache ~pre_resolve ?prefilter ~recorder ~on_session attack
      config
  in
  let header =
    {
      Trace.h_version = Trace.current_version;
      h_kind = Trace.Attack { attack_id; config = config_key config };
      h_trap_cache = trap_cache;
      h_pre_resolve = pre_resolve;
      h_prefilter = prefilter;
      h_fingerprint = !fp;
      h_against = None;
      h_traps = List.length (Obs.Recorder.trap_events recorder);
      h_cycles = (match !machine with Some m -> m.stats.cycles | None -> 0);
    }
  in
  write_trace ~recorder ~header ~path;
  outcome

(* ------------------------------------------------------------------ *)
(* Replay *)

type divergence = {
  dv_line : int;
  dv_seq : int;
  dv_field : string;
  dv_recorded : string;
  dv_replayed : string;
}

type report = {
  rp_file : string;
  rp_header : Trace.header;
  rp_traps_recorded : int;
  rp_traps_replayed : int;
  rp_cycles_replayed : int;
  rp_header_mismatch : (string * string) option;
      (* (recorded fingerprint, deployed fingerprint) when the hard
         gate refused to judge the stream — a run-level condition, not
         a per-trap divergence, so it never appears in
         [rp_divergences] *)
  rp_divergences : divergence list;
}

let ok r = r.rp_header_mismatch = None && r.rp_divergences = []

(* Per-replay comparison state, shared between the injection source
   and the wrapped tracer hook.  [idx] is the next recorded trap to
   match; the source peeks at it, the hook advances it. *)
type state = {
  expected : (int * Event.t) array;
  strict : bool;
  mutable idx : int;
  mutable extra : int;         (* fresh traps past the recorded stream *)
  mutable divs : divergence list;  (* reverse discovery order *)
  last : Event.t option ref;   (* fresh event, delivered via on_event *)
}

let peek st = if st.idx < Array.length st.expected then Some st.expected.(st.idx) else None

let push st ~line ~seq field recorded replayed =
  st.divs <-
    { dv_line = line; dv_seq = seq; dv_field = field; dv_recorded = recorded;
      dv_replayed = replayed }
    :: st.divs

let verdict_str = function
  | Event.Allowed -> "allowed"
  | Event.Denied { d_context; d_detail } ->
    Printf.sprintf "denied[%s: %s]" d_context d_detail

let cache_str = function None -> "-" | Some true -> "hit" | Some false -> "miss"

let spans_str spans =
  String.concat " "
    (List.map
       (fun (sp : Event.span) ->
         Printf.sprintf "%s:%s@%d+%d" (Event.phase_name sp.sp_phase)
           (Event.outcome_name sp.sp_outcome) sp.sp_start sp.sp_dur)
       spans)

(* Field-by-field comparison of one trap.  The default set covers what
   the acceptance gate calls verdict/cycle divergences; [strict] adds
   every remaining recorded field. *)
let compare_event st ~line (recorded : Event.t) (fresh : Event.t) =
  let seq = recorded.ev_seq in
  let chk field conv a b = if a <> b then push st ~line ~seq field (conv a) (conv b) in
  chk "kind" Event.kind_name recorded.ev_kind fresh.ev_kind;
  chk "sysno" string_of_int recorded.ev_sysno fresh.ev_sysno;
  chk "sysname" Fun.id recorded.ev_sysname fresh.ev_sysname;
  chk "rip" (Printf.sprintf "0x%Lx") recorded.ev_rip fresh.ev_rip;
  chk "verdict" verdict_str recorded.ev_verdict fresh.ev_verdict;
  chk "depth" string_of_int recorded.ev_depth fresh.ev_depth;
  chk "dur_cycles" string_of_int recorded.ev_dur fresh.ev_dur;
  if st.strict then begin
    chk "seq" string_of_int recorded.ev_seq fresh.ev_seq;
    chk "start_cycles" string_of_int recorded.ev_start fresh.ev_start;
    chk "cache" cache_str recorded.ev_cache fresh.ev_cache;
    chk "ptrace_calls" string_of_int recorded.ev_ptrace_calls fresh.ev_ptrace_calls;
    chk "ptrace_words" string_of_int recorded.ev_ptrace_words fresh.ev_ptrace_words;
    chk "shadow_probes" string_of_int recorded.ev_shadow_probes fresh.ev_shadow_probes;
    chk "phases" spans_str recorded.ev_spans fresh.ev_spans
  end

let snapshot_of_input (i : Event.input) : Ptrace.snapshot =
  {
    Ptrace.sn_frames =
      List.map
        (fun (f : Event.frame) ->
          {
            Ptrace.fv_func = f.f_func;
            fv_callsite = f.f_callsite;
            fv_args = Array.copy f.f_args;
            fv_ret_token = f.f_ret;
            fv_base = f.f_base;
          })
        i.in_frames;
    sn_slots =
      List.map
        (fun (s : Event.slot_read) ->
          (s.sr_base, { Ptrace.sl_lo = s.sr_lo; sl_span = Array.copy s.sr_span }))
        i.in_slots;
    sn_calls = 0;  (* recomputed from the shape by [inject_snapshot] *)
  }

(* The injected trap source: recorded inputs with live-identical cost
   accounting.  Falls back to the live reads when the recorded stream
   is exhausted (extra traps) or a record carries no input. *)
let source_of st : Bastion.Monitor.trap_source =
  {
    Bastion.Monitor.ts_regs =
      (fun tracer ->
        match peek st with
        | Some (_, ev) -> (
          match ev.Event.ev_input with
          | Some i ->
            Ptrace.inject_regs tracer
              { Ptrace.rip = ev.ev_rip; sysno = ev.ev_sysno;
                args = Array.copy i.in_args }
          | None -> Ptrace.getregs tracer)
        | None -> Ptrace.getregs tracer);
    ts_snapshot =
      (fun tracer ~slot_span ->
        match peek st with
        | Some (_, ({ Event.ev_input = Some i; _ })) ->
          Ptrace.inject_snapshot tracer (snapshot_of_input i)
        | _ -> Ptrace.snapshot tracer ~slot_span);
  }

(* Wrap the monitor's tracer hook: run the real verification, compare
   the fresh event against the recorded one, then follow the
   *recorded* verdict so the machine re-walks the recorded control
   flow even when the two disagree. *)
let wrap_hook st (proc : Kernel.Process.t) =
  match proc.tracer_hook with
  | None -> ()
  | Some orig ->
    proc.tracer_hook <-
      Some
        (fun p ~sysno ~args ->
          st.last := None;
          let fresh_verdict = orig p ~sysno ~args in
          match !(st.last) with
          | None -> fresh_verdict
          | Some fresh -> (
            match peek st with
            | Some (line, recorded) ->
              compare_event st ~line recorded fresh;
              st.idx <- st.idx + 1;
              (match recorded.ev_verdict with
              | Event.Allowed -> Kernel.Process.Continue
              | Event.Denied { d_context; d_detail } ->
                Kernel.Process.Deny { context = d_context; detail = d_detail })
            | None ->
              st.extra <- st.extra + 1;
              if st.extra = 1 then
                push st ~line:0 ~seq:(-1) "extra-trap" "(end of recorded stream)"
                  (Printf.sprintf "%s(%d) at cycle %d" fresh.ev_sysname
                     fresh.ev_sysno fresh.ev_start);
              fresh_verdict))

let fresh_recorder st =
  let r = Obs.Recorder.create () in
  Obs.Recorder.set_on_event r (Some (fun ev -> st.last := Some ev));
  r

let finish st (tr : Trace.t) ~fresh_cycles : report =
  let n = Array.length st.expected in
  if st.idx < n then begin
    let line, first_missing = st.expected.(st.idx) in
    push st ~line ~seq:first_missing.Event.ev_seq "missing-traps"
      (Printf.sprintf "%d traps" n)
      (Printf.sprintf "%d traps (stream ends at seq %d)" st.idx
         first_missing.Event.ev_seq)
  end;
  if st.extra > 1 then
    push st ~line:0 ~seq:(-1) "extra-traps" "0"
      (Printf.sprintf "%d traps past the recorded stream" st.extra);
  if fresh_cycles <> tr.t_header.h_cycles then
    push st ~line:0 ~seq:(-1) "total-cycles"
      (string_of_int tr.t_header.h_cycles)
      (string_of_int fresh_cycles);
  {
    rp_file = tr.t_file;
    rp_header = tr.t_header;
    rp_traps_recorded = n;
    rp_traps_replayed = st.idx + st.extra;
    rp_cycles_replayed = fresh_cycles;
    rp_header_mismatch = None;
    rp_divergences = List.rev st.divs;
  }

let fingerprint_only_report (tr : Trace.t) ~expected_fp ~actual_fp : report =
  {
    rp_file = tr.t_file;
    rp_header = tr.t_header;
    rp_traps_recorded = List.length tr.t_events;
    rp_traps_replayed = 0;
    rp_cycles_replayed = 0;
    rp_header_mismatch = Some (expected_fp, actual_fp);
    rp_divergences = [];
  }

let new_state ~strict (tr : Trace.t) : state =
  {
    expected = Array.of_list tr.t_events;
    strict;
    idx = 0;
    extra = 0;
    divs = [];
    last = ref None;
  }

let replay_run ~strict (tr : Trace.t) ~app ~defense ~scale : report =
  let a =
    match app_of ~name:app ~scale with
    | Ok a -> a
    | Error msg -> malformed ~file:tr.t_file msg
  in
  let defense =
    match defense_of_key defense with
    | Some d -> d
    | None -> malformed ~file:tr.t_file (Printf.sprintf "unknown defense %S" defense)
  in
  let st = new_state ~strict tr in
  let recorder = fresh_recorder st in
  let prepared =
    Drivers.prepare ~trap_cache:tr.t_header.h_trap_cache
      ~pre_resolve:tr.t_header.h_pre_resolve
      ?prefilter:tr.t_header.h_prefilter ~recorder a defense
  in
  let actual_fp =
    match prepared.Drivers.pr_monitor with
    | Some mon -> fingerprint_of mon
    | None -> "-"
  in
  if not (String.equal actual_fp tr.t_header.h_fingerprint) then
    (* The hard gate: never judge a trace against different metadata. *)
    fingerprint_only_report tr ~expected_fp:tr.t_header.h_fingerprint ~actual_fp
  else begin
    (match prepared.Drivers.pr_monitor with
    | Some mon -> Bastion.Monitor.set_source mon (source_of st)
    | None -> ());
    wrap_hook st prepared.Drivers.pr_process;
    (* Following a corrupted recorded verdict can kill the replayed
       process; that is itself a divergence, not an engine failure. *)
    (try ignore (Drivers.execute prepared)
     with Drivers.Benign_run_died msg ->
       push st ~line:0 ~seq:(-1) "run-outcome" "clean exit" msg);
    finish st tr ~fresh_cycles:prepared.Drivers.pr_machine.stats.cycles
  end

let replay_attack ~strict (tr : Trace.t) ~attack_id ~config : report =
  let attack =
    match attack_of ~id:attack_id with
    | Ok a -> a
    | Error msg -> malformed ~file:tr.t_file msg
  in
  let config =
    match config_of_key config with
    | Some c -> c
    | None ->
      malformed ~file:tr.t_file (Printf.sprintf "unknown attack config %S" config)
  in
  let st = new_state ~strict tr in
  let recorder = fresh_recorder st in
  let machine : Machine.t option ref = ref None in
  let fp_mismatch = ref None in
  let on_session (s : Bastion.Api.session) =
    machine := Some s.Bastion.Api.machine;
    let actual_fp = fingerprint_of s.Bastion.Api.monitor in
    if String.equal actual_fp tr.t_header.h_fingerprint then begin
      Bastion.Monitor.set_source s.Bastion.Api.monitor (source_of st);
      wrap_hook st s.Bastion.Api.process
    end
    else fp_mismatch := Some actual_fp
  in
  ignore
    (Runner.run ~trap_cache:tr.t_header.h_trap_cache
       ~pre_resolve:tr.t_header.h_pre_resolve
       ?prefilter:tr.t_header.h_prefilter ~recorder ~on_session attack config);
  match !fp_mismatch with
  | Some actual_fp ->
    fingerprint_only_report tr ~expected_fp:tr.t_header.h_fingerprint ~actual_fp
  | None ->
    let fresh_cycles = match !machine with Some m -> m.stats.cycles | None -> 0 in
    finish st tr ~fresh_cycles

let replay ?(strict = false) (tr : Trace.t) : report =
  match tr.t_header.h_kind with
  | Trace.Run { app; defense; scale } -> replay_run ~strict tr ~app ~defense ~scale
  | Trace.Attack { attack_id; config } -> replay_attack ~strict tr ~attack_id ~config

(* ------------------------------------------------------------------ *)
(* Differential replay.

   Where strict replay refuses a trace whose metadata fingerprint has
   moved, differential replay embraces it: re-execute the recorded trap
   stream through a monitor built from *changed* metadata, follow the
   recorded snapshot inputs and verdicts (so control flow stays on the
   recorded path), but judge every trap with the fresh verification
   logic — and report what moved.  Verdict flips (allow->deny and
   deny->allow separately), denial-context changes, tier movements
   (including across the seccomp pre-filter boundary) and cycle deltas
   are the payload, not failures.

   Stream alignment is positional with a (sysno, rip) guard: a
   recorded trap is consumed by the fresh trap at the same position
   only when both agree on the trapping syscall and callsite.  When
   the changed metadata alters the *pre-filter automaton* the streams
   can genuinely differ: a recorded trap the fresh automaton resolves
   at seccomp stage is consumed by the wrapped resolution hook (a
   movement to the prefilter tier), and a fresh trap the recorded run
   resolved (so it is absent from the trace) is judged fresh against a
   synthetic prefilter "before" and then allowed through, because
   that is how the recorded run behaved.  When the fingerprints are
   equal the automata are identical, the guards reduce to pure
   positional matching, and a clean diff (zero flips, zero moves) is
   the regression oracle CI asserts over the golden corpus. *)

type flip = {
  fl_line : int;    (* trace line of the recorded trap; 0 when unmatched *)
  fl_seq : int;     (* recorded trap sequence number; -1 when unmatched *)
  fl_sysno : int;
  fl_sysname : string;
  fl_rip : int64;
  fl_before : string;  (* recorded side of the verdict *)
  fl_after : string;   (* freshly judged side *)
}

type context_move = {
  cm_line : int;
  cm_seq : int;
  cm_sysname : string;
  cm_before : string;  (* recorded denial, "context: detail" *)
  cm_after : string;   (* fresh denial *)
}

type diff_report = {
  dr_file : string;
  dr_header : Trace.header;  (* [h_against] filled with the fresh fingerprint *)
  dr_recorded_fp : string;
  dr_against_fp : string;
  dr_same_metadata : bool;
  dr_traps_recorded : int;
  dr_traps_matched : int;
  dr_moved_to_prefilter : int;
      (* recorded traps the fresh automaton resolved at seccomp stage *)
  dr_fresh_unmatched : int;
      (* fresh traps with no recorded counterpart (prefilter-resolved
         in the recorded run) *)
  dr_unconsumed_recorded : int;
      (* recorded traps the fresh run never delivered *)
  dr_allow_to_deny : flip list;
  dr_deny_to_allow : flip list;
  dr_context_moves : context_move list;
  dr_tier_matrix : (string * string * int) list;
      (* (before, after, count), ascending tier-rank order, zero rows
         omitted; the diagonal counts traps whose tier did not move *)
  dr_tier_moves : int;  (* off-diagonal total *)
  dr_trap_cycle_delta : int;  (* Σ fresh dur - recorded dur, matched traps *)
  dr_cycles_recorded : int;
  dr_cycles_replayed : int;
  dr_run_outcome : string option;  (* Some msg when the replayed run died *)
}

(* A diff is benign when no verdict moved in either direction, no
   denial changed context, and the replayed run survived.  Tier
   movements and cycle deltas are informational: they are the expected
   consequence of metadata that got better or worse, not breakage. *)
let diff_ok r =
  r.dr_allow_to_deny = [] && r.dr_deny_to_allow = []
  && r.dr_context_moves = [] && r.dr_run_outcome = None

(* The in-tree compile pass for the recorded configuration — the base
   whose instrumented program an edited metadata file is restored
   against ([Metadata_io.load (base_bundle tr).inst.iprog]). *)
let base_bundle (tr : Trace.t) : Bastion.Api.protected =
  let pre_resolve = tr.t_header.h_pre_resolve in
  match tr.t_header.h_kind with
  | Trace.Run { app; defense; scale } ->
    let a =
      match app_of ~name:app ~scale with
      | Ok a -> a
      | Error msg -> malformed ~file:tr.t_file msg
    in
    let fs =
      match defense_of_key defense with
      | Some (Drivers.Bastion_fs _) -> true
      | Some _ -> false
      | None ->
        malformed ~file:tr.t_file (Printf.sprintf "unknown defense %S" defense)
    in
    Drivers.protected_of ~pre_resolve a ~fs
  | Trace.Attack { attack_id; _ } ->
    let attack =
      match attack_of ~id:attack_id with
      | Ok a -> a
      | Error msg -> malformed ~file:tr.t_file msg
    in
    let p =
      Bastion.Api.protect ~protect_filesystem:attack.a_fs_scope
        (attack.a_victim.v_build ())
    in
    if pre_resolve then Bastion_analysis.Preresolve.enrich p else p

type dstate = {
  d_expected : (int * Event.t) array;
  d_against_fp : string;
  d_same : bool;  (* fingerprints equal: pure positional matching *)
  mutable d_idx : int;
  mutable d_matched : int;
  mutable d_moved_pre : int;
  mutable d_unmatched : int;
  mutable d_ad : flip list;          (* reverse discovery order *)
  mutable d_da : flip list;
  mutable d_ctx : context_move list;
  d_matrix : int array array;        (* 6x6, indexed by tier rank *)
  mutable d_trap_delta : int;
  d_last : Event.t option ref;
}

let new_dstate (tr : Trace.t) ~against_fp ~last : dstate =
  {
    d_expected = Array.of_list tr.t_events;
    d_against_fp = against_fp;
    d_same = String.equal against_fp tr.t_header.h_fingerprint;
    d_idx = 0;
    d_matched = 0;
    d_moved_pre = 0;
    d_unmatched = 0;
    d_ad = [];
    d_da = [];
    d_ctx = [];
    d_matrix = Array.make_matrix 6 6 0;
    d_trap_delta = 0;
    d_last = last;
  }

let dpeek d =
  if d.d_idx < Array.length d.d_expected then Some d.d_expected.(d.d_idx)
  else None

let bump_matrix d ~before ~after =
  match (before, after) with
  | Some b, Some a ->
    let b = Event.tier_rank b and a = Event.tier_rank a in
    d.d_matrix.(b).(a) <- d.d_matrix.(b).(a) + 1
  | _ -> ()  (* fetch-only records carry no tier; nothing to place *)

let mkflip ~line (recorded : Event.t) ~before ~after : flip =
  {
    fl_line = line;
    fl_seq = recorded.ev_seq;
    fl_sysno = recorded.ev_sysno;
    fl_sysname = recorded.ev_sysname;
    fl_rip = recorded.ev_rip;
    fl_before = before;
    fl_after = after;
  }

(* Injection for the diff: recorded inputs only where the recorded
   trap demonstrably is the live trap (same syscall, same callsite —
   [trap_rip] and [cur_sysno] are engine-side peeks, never charged).
   Anywhere else the fresh run reads the tracee live, which is the
   ground truth because control flow follows the recorded path. *)
let diff_source d : Bastion.Monitor.trap_source =
  let next (tracer : Ptrace.t) =
    match dpeek d with
    | Some (_, ev)
      when ev.Event.ev_sysno = tracer.Ptrace.cur_sysno
           && Int64.equal ev.Event.ev_rip tracer.Ptrace.machine.Machine.trap_rip
      ->
      Some ev
    | _ -> None
  in
  {
    Bastion.Monitor.ts_regs =
      (fun tracer ->
        match next tracer with
        | Some ev -> (
          match ev.Event.ev_input with
          | Some i ->
            Ptrace.inject_regs tracer
              { Ptrace.rip = ev.ev_rip; sysno = ev.ev_sysno;
                args = Array.copy i.in_args }
          | None -> Ptrace.getregs tracer)
        | None -> Ptrace.getregs tracer);
    ts_snapshot =
      (fun tracer ~slot_span ->
        match next tracer with
        | Some { Event.ev_input = Some i; _ } ->
          Ptrace.inject_snapshot tracer (snapshot_of_input i)
        | _ -> Ptrace.snapshot tracer ~slot_span);
  }

(* Wrap the tracer hook: judge the trap fresh, classify the movement
   against the matched recorded trap, then follow the *recorded*
   behaviour (matched traps follow the recorded verdict; unmatched
   fresh traps were prefilter-resolved — i.e. allowed — in the
   recorded run). *)
let diff_hook d (proc : Kernel.Process.t) =
  match proc.tracer_hook with
  | None -> ()
  | Some orig ->
    proc.tracer_hook <-
      Some
        (fun p ~sysno ~args ->
          d.d_last := None;
          let fresh_verdict = orig p ~sysno ~args in
          match !(d.d_last) with
          | None -> fresh_verdict
          | Some fresh -> (
            match dpeek d with
            | Some (line, recorded)
              when recorded.Event.ev_sysno = fresh.Event.ev_sysno
                   && Int64.equal recorded.ev_rip fresh.ev_rip ->
              d.d_idx <- d.d_idx + 1;
              d.d_matched <- d.d_matched + 1;
              d.d_trap_delta <- d.d_trap_delta + fresh.ev_dur - recorded.ev_dur;
              bump_matrix d ~before:recorded.ev_tier ~after:fresh.ev_tier;
              (match (recorded.ev_verdict, fresh.ev_verdict) with
              | Event.Allowed, Event.Allowed -> ()
              | Event.Allowed, (Event.Denied _ as v) ->
                d.d_ad <-
                  mkflip ~line recorded ~before:"allowed" ~after:(verdict_str v)
                  :: d.d_ad
              | (Event.Denied _ as v), Event.Allowed ->
                d.d_da <-
                  mkflip ~line recorded ~before:(verdict_str v) ~after:"allowed"
                  :: d.d_da
              | (Event.Denied _ as rv), (Event.Denied _ as fv) ->
                if rv <> fv then
                  d.d_ctx <-
                    { cm_line = line; cm_seq = recorded.ev_seq;
                      cm_sysname = recorded.ev_sysname;
                      cm_before = verdict_str rv; cm_after = verdict_str fv }
                    :: d.d_ctx);
              (match recorded.ev_verdict with
              | Event.Allowed -> Kernel.Process.Continue
              | Event.Denied { d_context; d_detail } ->
                Kernel.Process.Deny { context = d_context; detail = d_detail })
            | _ ->
              (* No recorded counterpart: the recorded run resolved this
                 trap at the seccomp stage, so its "before" is the
                 prefilter tier and its recorded behaviour is allow. *)
              d.d_unmatched <- d.d_unmatched + 1;
              bump_matrix d ~before:(Some Event.Tier_prefilter)
                ~after:fresh.ev_tier;
              (match fresh.ev_verdict with
              | Event.Denied _ as v ->
                d.d_ad <-
                  mkflip ~line:0
                    { fresh with ev_seq = -1 }
                    ~before:"allowed@prefilter" ~after:(verdict_str v)
                  :: d.d_ad
              | Event.Allowed -> ());
              Kernel.Process.Continue))

(* The other side of the seccomp boundary: the fresh automaton resolves
   a trap the recorded run delivered to the full monitor.  Consume the
   recorded trap as a movement to the prefilter tier; a recorded denial
   resolved away is a deny->allow flip.  With identical fingerprints
   the automata are identical and the recorded stream holds exactly the
   fall-throughs, so the guard is skipped entirely. *)
let diff_wrap_resolve d (mon : Bastion.Monitor.t) =
  match Bastion.Monitor.prefilter mon with
  | None -> ()
  | Some fa ->
    let orig = fa.Kernel.Seccomp.fa_on_resolve in
    fa.Kernel.Seccomp.fa_on_resolve <-
      Some
        (fun ~sysno ~rip ->
          (match orig with Some f -> f ~sysno ~rip | None -> ());
          if not d.d_same then
            match dpeek d with
            | Some (line, recorded)
              when recorded.Event.ev_sysno = sysno
                   && Int64.equal recorded.ev_rip rip ->
              d.d_idx <- d.d_idx + 1;
              d.d_moved_pre <- d.d_moved_pre + 1;
              bump_matrix d ~before:recorded.ev_tier
                ~after:(Some Event.Tier_prefilter);
              (match recorded.ev_verdict with
              | Event.Denied _ as v ->
                d.d_da <-
                  mkflip ~line recorded ~before:(verdict_str v)
                    ~after:"allowed@prefilter"
                  :: d.d_da
              | Event.Allowed -> ())
            | _ -> ())

let tier_rank_name r =
  match Event.tier_of_rank r with Some t -> Event.tier_name t | None -> "?"

let diff_finish d (tr : Trace.t) ~fresh_cycles ~run_outcome : diff_report =
  let entries = ref [] in
  let moves = ref 0 in
  for b = 5 downto 0 do
    for a = 5 downto 0 do
      let c = d.d_matrix.(b).(a) in
      if c > 0 then begin
        if b <> a then moves := !moves + c;
        entries := (tier_rank_name b, tier_rank_name a, c) :: !entries
      end
    done
  done;
  {
    dr_file = tr.t_file;
    dr_header = { tr.t_header with Trace.h_against = Some d.d_against_fp };
    dr_recorded_fp = tr.t_header.h_fingerprint;
    dr_against_fp = d.d_against_fp;
    dr_same_metadata = d.d_same;
    dr_traps_recorded = Array.length d.d_expected;
    dr_traps_matched = d.d_matched;
    dr_moved_to_prefilter = d.d_moved_pre;
    dr_fresh_unmatched = d.d_unmatched;
    dr_unconsumed_recorded = Array.length d.d_expected - d.d_idx;
    dr_allow_to_deny = List.rev d.d_ad;
    dr_deny_to_allow = List.rev d.d_da;
    dr_context_moves = List.rev d.d_ctx;
    dr_tier_matrix = !entries;
    dr_tier_moves = !moves;
    dr_trap_cycle_delta = d.d_trap_delta;
    dr_cycles_recorded = tr.t_header.h_cycles;
    dr_cycles_replayed = fresh_cycles;
    dr_run_outcome = run_outcome;
  }

let diff_run ?against (tr : Trace.t) ~app ~defense ~scale : diff_report =
  let a =
    match app_of ~name:app ~scale with
    | Ok a -> a
    | Error msg -> malformed ~file:tr.t_file msg
  in
  let defense_v =
    match defense_of_key defense with
    | Some d -> d
    | None -> malformed ~file:tr.t_file (Printf.sprintf "unknown defense %S" defense)
  in
  let last = ref None in
  let recorder = Obs.Recorder.create () in
  Obs.Recorder.set_on_event recorder (Some (fun ev -> last := Some ev));
  let prepared =
    Drivers.prepare ~trap_cache:tr.t_header.h_trap_cache
      ~pre_resolve:tr.t_header.h_pre_resolve
      ?prefilter:tr.t_header.h_prefilter ?bundle:against ~recorder a defense_v
  in
  let against_fp =
    match prepared.Drivers.pr_monitor with
    | Some mon -> fingerprint_of mon
    | None -> "-"
  in
  let d = new_dstate tr ~against_fp ~last in
  (match prepared.Drivers.pr_monitor with
  | Some mon ->
    Bastion.Monitor.set_source mon (diff_source d);
    diff_wrap_resolve d mon
  | None -> ());
  diff_hook d prepared.Drivers.pr_process;
  let run_outcome =
    try
      ignore (Drivers.execute prepared);
      None
    with Drivers.Benign_run_died msg -> Some msg
  in
  diff_finish d tr ~fresh_cycles:prepared.Drivers.pr_machine.stats.cycles
    ~run_outcome

let diff_attack ?against (tr : Trace.t) ~attack_id ~config : diff_report =
  let attack =
    match attack_of ~id:attack_id with
    | Ok a -> a
    | Error msg -> malformed ~file:tr.t_file msg
  in
  let config_v =
    match config_of_key config with
    | Some c -> c
    | None ->
      malformed ~file:tr.t_file (Printf.sprintf "unknown attack config %S" config)
  in
  let last = ref None in
  let recorder = Obs.Recorder.create () in
  Obs.Recorder.set_on_event recorder (Some (fun ev -> last := Some ev));
  let machine : Machine.t option ref = ref None in
  let dref = ref None in
  let on_session (s : Bastion.Api.session) =
    machine := Some s.Bastion.Api.machine;
    let against_fp = fingerprint_of s.Bastion.Api.monitor in
    let d = new_dstate tr ~against_fp ~last in
    dref := Some d;
    Bastion.Monitor.set_source s.Bastion.Api.monitor (diff_source d);
    diff_wrap_resolve d s.Bastion.Api.monitor;
    diff_hook d s.Bastion.Api.process
  in
  ignore
    (Runner.run ~trap_cache:tr.t_header.h_trap_cache
       ~pre_resolve:tr.t_header.h_pre_resolve
       ?prefilter:tr.t_header.h_prefilter ?bundle:against ~recorder ~on_session
       attack config_v);
  match !dref with
  | None ->
    malformed ~file:tr.t_file "undefended attack traces cannot be diff-replayed"
  | Some d ->
    let fresh_cycles =
      match !machine with Some m -> m.Machine.stats.cycles | None -> 0
    in
    diff_finish d tr ~fresh_cycles ~run_outcome:None

let diff_replay ?against (tr : Trace.t) : diff_report =
  match tr.t_header.h_kind with
  | Trace.Run { app; defense; scale } -> diff_run ?against tr ~app ~defense ~scale
  | Trace.Attack { attack_id; config } ->
    diff_attack ?against tr ~attack_id ~config

(* ------------------------------------------------------------------ *)
(* Reporting *)

let divergence_to_json (d : divergence) : Report.Json.t =
  let open Report.Json in
  Obj
    [
      ("line", Num (float_of_int d.dv_line));
      ("seq", Num (float_of_int d.dv_seq));
      ("field", Str d.dv_field);
      ("recorded", Str d.dv_recorded);
      ("replayed", Str d.dv_replayed);
    ]

let report_to_json (r : report) : Report.Json.t =
  let open Report.Json in
  Obj
    ([
      ("file", Str r.rp_file);
      ("header", Trace.header_to_json r.rp_header);
      ("traps_recorded", Num (float_of_int r.rp_traps_recorded));
      ("traps_replayed", Num (float_of_int r.rp_traps_replayed));
      ("cycles_recorded", Num (float_of_int r.rp_header.Trace.h_cycles));
      ("cycles_replayed", Num (float_of_int r.rp_cycles_replayed));
      ("ok", Bool (ok r));
    ]
    @ (match r.rp_header_mismatch with
      | None -> []
      | Some (recorded, deployed) ->
        [ ("header_mismatch",
           Obj [ ("recorded", Str recorded); ("deployed", Str deployed) ]) ])
    @ [ ("divergences", List (List.map divergence_to_json r.rp_divergences)) ])

let kind_str = function
  | Trace.Run { app; defense; scale } -> Printf.sprintf "%s/%s [%s]" app defense scale
  | Trace.Attack { attack_id; config } -> Printf.sprintf "%s under %s" attack_id config

let render (r : report) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "replay %s: %s — %d traps recorded, %d replayed, %d divergence%s\n"
       r.rp_file (kind_str r.rp_header.Trace.h_kind) r.rp_traps_recorded
       r.rp_traps_replayed
       (List.length r.rp_divergences)
       (if List.length r.rp_divergences = 1 then "" else "s"));
  (match r.rp_header_mismatch with
  | None -> ()
  | Some (recorded, deployed) ->
    Buffer.add_string buf
      (Printf.sprintf
         "  %s:1: metadata fingerprint mismatch: recorded %s, deployed %s — \
          stream not judged (use `bastion replay --against` for a \
          differential report)\n"
         r.rp_file recorded deployed));
  List.iter
    (fun d ->
      let where =
        if d.dv_line = 0 then Printf.sprintf "%s: run" r.rp_file
        else Printf.sprintf "%s:%d: trap seq %d" r.rp_file d.dv_line d.dv_seq
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s: %s: recorded %s, replayed %s\n" where d.dv_field
           d.dv_recorded d.dv_replayed))
    r.rp_divergences;
  Buffer.contents buf

let flip_to_json (f : flip) : Report.Json.t =
  let open Report.Json in
  Obj
    [
      ("line", Num (float_of_int f.fl_line));
      ("seq", Num (float_of_int f.fl_seq));
      ("sysno", Num (float_of_int f.fl_sysno));
      ("sysname", Str f.fl_sysname);
      ("rip", Str (Printf.sprintf "0x%Lx" f.fl_rip));
      ("before", Str f.fl_before);
      ("after", Str f.fl_after);
    ]

let context_move_to_json (c : context_move) : Report.Json.t =
  let open Report.Json in
  Obj
    [
      ("line", Num (float_of_int c.cm_line));
      ("seq", Num (float_of_int c.cm_seq));
      ("sysname", Str c.cm_sysname);
      ("before", Str c.cm_before);
      ("after", Str c.cm_after);
    ]

let diff_report_to_json (r : diff_report) : Report.Json.t =
  let open Report.Json in
  Obj
    ([
       ("schema", Str "bastion-diff-replay/1");
       ("file", Str r.dr_file);
       ("header", Trace.header_to_json r.dr_header);
       ("recorded_fingerprint", Str r.dr_recorded_fp);
       ("against_fingerprint", Str r.dr_against_fp);
       ("same_metadata", Bool r.dr_same_metadata);
       ("ok", Bool (diff_ok r));
       ("traps",
        Obj
          [
            ("recorded", Num (float_of_int r.dr_traps_recorded));
            ("matched", Num (float_of_int r.dr_traps_matched));
            ("moved_to_prefilter", Num (float_of_int r.dr_moved_to_prefilter));
            ("fresh_unmatched", Num (float_of_int r.dr_fresh_unmatched));
            ("unconsumed", Num (float_of_int r.dr_unconsumed_recorded));
          ]);
       ("flips",
        Obj
          [
            ("allow_to_deny", List (List.map flip_to_json r.dr_allow_to_deny));
            ("deny_to_allow", List (List.map flip_to_json r.dr_deny_to_allow));
          ]);
       ("context_moves", List (List.map context_move_to_json r.dr_context_moves));
       ("tier_matrix",
        List
          (List.map
             (fun (before, after, count) ->
               Obj
                 [
                   ("before", Str before);
                   ("after", Str after);
                   ("count", Num (float_of_int count));
                 ])
             r.dr_tier_matrix));
       ("tier_moves", Num (float_of_int r.dr_tier_moves));
       ("cycles",
        Obj
          [
            ("recorded", Num (float_of_int r.dr_cycles_recorded));
            ("replayed", Num (float_of_int r.dr_cycles_replayed));
            ("trap_delta", Num (float_of_int r.dr_trap_cycle_delta));
          ]);
     ]
    @ match r.dr_run_outcome with
      | None -> []
      | Some msg -> [ ("run_outcome", Str msg) ])

let render_diff (r : diff_report) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "diff-replay %s: %s — recorded %s, against %s%s\n" r.dr_file
       (kind_str r.dr_header.Trace.h_kind) r.dr_recorded_fp r.dr_against_fp
       (if r.dr_same_metadata then " (metadata unchanged)" else ""));
  Buffer.add_string buf
    (Printf.sprintf
       "  traps: %d recorded, %d matched, %d moved to prefilter, %d fresh \
        unmatched, %d unconsumed\n"
       r.dr_traps_recorded r.dr_traps_matched r.dr_moved_to_prefilter
       r.dr_fresh_unmatched r.dr_unconsumed_recorded);
  Buffer.add_string buf
    (Printf.sprintf
       "  verdict flips: %d allow->deny, %d deny->allow; context moves: %d\n"
       (List.length r.dr_allow_to_deny)
       (List.length r.dr_deny_to_allow)
       (List.length r.dr_context_moves));
  (if r.dr_tier_moves = 0 then
     Buffer.add_string buf "  tiers: unchanged\n"
   else begin
     let moved =
       List.filter_map
         (fun (b, a, c) ->
           if String.equal b a then None
           else Some (Printf.sprintf "%s->%s x%d" b a c))
         r.dr_tier_matrix
     in
     Buffer.add_string buf
       (Printf.sprintf "  tiers: %d moved (%s)\n" r.dr_tier_moves
          (String.concat ", " moved))
   end);
  Buffer.add_string buf
    (Printf.sprintf "  cycles: %d recorded, %d replayed (trap delta %+d)\n"
       r.dr_cycles_recorded r.dr_cycles_replayed r.dr_trap_cycle_delta);
  let flip_line tag (f : flip) =
    let where =
      if f.fl_line = 0 then Printf.sprintf "%s: unmatched" r.dr_file
      else Printf.sprintf "%s:%d: trap seq %d" r.dr_file f.fl_line f.fl_seq
    in
    Buffer.add_string buf
      (Printf.sprintf "  %s: %s %s(%d) at %s: %s -> %s\n" where tag f.fl_sysname
         f.fl_sysno
         (Printf.sprintf "0x%Lx" f.fl_rip)
         f.fl_before f.fl_after)
  in
  List.iter (flip_line "allow->deny") r.dr_allow_to_deny;
  List.iter (flip_line "deny->allow") r.dr_deny_to_allow;
  List.iter
    (fun (c : context_move) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s:%d: trap seq %d: context moved: %s -> %s\n"
           r.dr_file c.cm_line c.cm_seq c.cm_before c.cm_after))
    r.dr_context_moves;
  (match r.dr_run_outcome with
  | None -> ()
  | Some msg ->
    Buffer.add_string buf (Printf.sprintf "  run outcome: %s\n" msg));
  Buffer.contents buf
