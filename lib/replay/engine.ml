(* The replay engine: offline re-verification of a recorded trap
   stream against the real monitor.

   The monitor's verdict is a pure function of the deployed metadata
   and the per-trap snapshot, and the machine model is deterministic.
   Replay therefore re-executes the recorded configuration from
   scratch — same program, same protect bundle, same monitor knobs —
   but swaps the monitor's trap source so that every register file and
   stack snapshot is *injected from the trace* (charging identical
   modelled costs via [Ptrace.inject_*]) instead of read from the
   tracee.  The monitor re-judges each trap on its real verification
   path; a wrapped tracer hook compares the fresh event against the
   recorded one and then returns the *recorded* verdict, so control
   flow always follows the recorded run and one corrupted record
   cannot derail the comparison of everything after it. *)

module Drivers = Workloads.Drivers
module Runner = Attacks.Runner
module Event = Obs.Event
module Ptrace = Kernel.Ptrace

(* ------------------------------------------------------------------ *)
(* Name registries.  The header stores short stable keys; recording
   and replay resolve them through the same tables, so both sides
   always build the same run. *)

let defense_table =
  [
    ("vanilla", Drivers.Vanilla);
    ("cfi", Drivers.Llvm_cfi);
    ("cet", Drivers.Cet_only);
    ("ct", Drivers.Bastion_ct);
    ("ct-cf", Drivers.Bastion_ct_cf);
    ("full", Drivers.Bastion_full);
    ("fs-off", Drivers.Bastion_fs Bastion.Monitor.Fs_off);
    ("fs-hook", Drivers.Bastion_fs Bastion.Monitor.Fs_hook_only);
    ("fs-fetch", Drivers.Bastion_fs Bastion.Monitor.Fs_fetch_only);
    ("fs-full", Drivers.Bastion_fs Bastion.Monitor.Fs_full);
  ]

let defense_key (d : Drivers.defense) : string =
  fst (List.find (fun (_, d') -> d' = d) defense_table)

let defense_of_key key =
  Option.map snd (List.find_opt (fun (k, _) -> String.equal k key) defense_table)

let config_table =
  [
    ("none", Runner.Undefended);
    ("ct", Runner.Only_ct);
    ("cf", Runner.Only_cf);
    ("ai", Runner.Only_ai);
    ("full", Runner.Full_bastion);
  ]

let config_key (c : Runner.config) : string =
  fst (List.find (fun (_, c') -> c' = c) config_table)

let config_of_key key =
  Option.map snd (List.find_opt (fun (k, _) -> String.equal k key) config_table)

let scales = [ "default"; "small" ]

(* Golden-corpus scale: the models' [small] parameter sets — small
   enough to check in and to replay in a unit test, large enough to
   exercise accept/read/write/mprotect and the verdict cache.  Shared
   with the fleet harness, which harvests its per-trap service
   profiles from the same runs. *)
let nginx_small = Workloads.Nginx_model.small
let sqlite_small = Workloads.Sqlite_model.small
let vsftpd_small = Workloads.Vsftpd_model.small

let app_of ~name ~scale : (Drivers.app, string) result =
  if not (List.mem scale scales) then
    Error (Printf.sprintf "unknown scale %S (known: %s)" scale
             (String.concat ", " scales))
  else
    match (name, scale) with
    | "nginx", "default" -> Ok (Drivers.nginx ())
    | "nginx", "small" -> Ok (Drivers.nginx ~params:nginx_small ())
    | "sqlite", "default" -> Ok (Drivers.sqlite ())
    | "sqlite", "small" -> Ok (Drivers.sqlite ~params:sqlite_small ())
    | "vsftpd", "default" -> Ok (Drivers.vsftpd ())
    | "vsftpd", "small" -> Ok (Drivers.vsftpd ~params:vsftpd_small ())
    | _ -> Error (Printf.sprintf "unknown app %S (known: nginx, sqlite, vsftpd)" name)

let attack_of ~id : (Attacks.Attack.t, string) result =
  match
    List.find_opt (fun (a : Attacks.Attack.t) -> String.equal a.a_id id)
      Attacks.Catalog.all
  with
  | Some a -> Ok a
  | None -> Error (Printf.sprintf "unknown attack id %S (see `bastion list`)" id)

let malformed ~file msg = raise (Trace.Malformed { file; line = 1; msg })

let fingerprint_of (mon : Bastion.Monitor.t) =
  Bastion.Metadata.fingerprint mon.Bastion.Monitor.meta

(* ------------------------------------------------------------------ *)
(* Recording *)

(* Default-scale SQLite records ~116k traps; give the audit ring ample
   headroom so a recorded stream is never silently truncated (a
   dropped-oldest ring would break seq contiguity and the reader would
   reject the file). *)
let recording_ring_capacity = 1 lsl 21

let write_trace ~recorder ~header ~path =
  let dropped = Obs.Recorder.events_dropped recorder in
  if dropped > 0 then
    failwith
      (Printf.sprintf
         "recording dropped %d events (ring too small); refusing to write an \
          unreplayable trace to %s"
         dropped path);
  Obs.Recorder.write_jsonl ~header:(Trace.header_to_json header) recorder path

let record_run ?(trap_cache = true) ?(pre_resolve = false) ?prefilter ~app
    ~scale ~defense ~path () : Drivers.measurement =
  let a =
    match app_of ~name:app ~scale with
    | Ok a -> a
    | Error msg -> malformed ~file:path msg
  in
  let recorder =
    Obs.Recorder.create ~tracing:true ~ring_capacity:recording_ring_capacity ()
  in
  let m = Drivers.run ~trap_cache ~pre_resolve ?prefilter ~recorder a defense in
  let header =
    {
      Trace.h_version = Trace.current_version;
      h_kind = Trace.Run { app; defense = defense_key defense; scale };
      h_trap_cache = trap_cache;
      h_pre_resolve = pre_resolve;
      h_prefilter = prefilter;
      h_fingerprint =
        (match m.Drivers.m_monitor with
        | Some mon -> fingerprint_of mon
        | None -> "-");
      h_traps = List.length (Obs.Recorder.trap_events recorder);
      h_cycles = m.Drivers.m_cycles;
    }
  in
  write_trace ~recorder ~header ~path;
  m

let record_attack ?(trap_cache = true) ?(pre_resolve = false) ?prefilter
    ~attack_id ~config ~path () : Runner.outcome =
  (match config with
  | Runner.Undefended ->
    malformed ~file:path "undefended attack runs have no monitor to record"
  | _ -> ());
  let attack =
    match attack_of ~id:attack_id with
    | Ok a -> a
    | Error msg -> malformed ~file:path msg
  in
  let recorder =
    Obs.Recorder.create ~tracing:true ~ring_capacity:recording_ring_capacity ()
  in
  let fp = ref "-" in
  let machine : Machine.t option ref = ref None in
  let on_session (s : Bastion.Api.session) =
    fp := fingerprint_of s.Bastion.Api.monitor;
    machine := Some s.Bastion.Api.machine
  in
  let outcome =
    Runner.run ~trap_cache ~pre_resolve ?prefilter ~recorder ~on_session attack
      config
  in
  let header =
    {
      Trace.h_version = Trace.current_version;
      h_kind = Trace.Attack { attack_id; config = config_key config };
      h_trap_cache = trap_cache;
      h_pre_resolve = pre_resolve;
      h_prefilter = prefilter;
      h_fingerprint = !fp;
      h_traps = List.length (Obs.Recorder.trap_events recorder);
      h_cycles = (match !machine with Some m -> m.stats.cycles | None -> 0);
    }
  in
  write_trace ~recorder ~header ~path;
  outcome

(* ------------------------------------------------------------------ *)
(* Replay *)

type divergence = {
  dv_line : int;
  dv_seq : int;
  dv_field : string;
  dv_recorded : string;
  dv_replayed : string;
}

type report = {
  rp_file : string;
  rp_header : Trace.header;
  rp_traps_recorded : int;
  rp_traps_replayed : int;
  rp_cycles_replayed : int;
  rp_divergences : divergence list;
}

let ok r = r.rp_divergences = []

(* Per-replay comparison state, shared between the injection source
   and the wrapped tracer hook.  [idx] is the next recorded trap to
   match; the source peeks at it, the hook advances it. *)
type state = {
  expected : (int * Event.t) array;
  strict : bool;
  mutable idx : int;
  mutable extra : int;         (* fresh traps past the recorded stream *)
  mutable divs : divergence list;  (* reverse discovery order *)
  last : Event.t option ref;   (* fresh event, delivered via on_event *)
}

let peek st = if st.idx < Array.length st.expected then Some st.expected.(st.idx) else None

let push st ~line ~seq field recorded replayed =
  st.divs <-
    { dv_line = line; dv_seq = seq; dv_field = field; dv_recorded = recorded;
      dv_replayed = replayed }
    :: st.divs

let verdict_str = function
  | Event.Allowed -> "allowed"
  | Event.Denied { d_context; d_detail } ->
    Printf.sprintf "denied[%s: %s]" d_context d_detail

let cache_str = function None -> "-" | Some true -> "hit" | Some false -> "miss"

let spans_str spans =
  String.concat " "
    (List.map
       (fun (sp : Event.span) ->
         Printf.sprintf "%s:%s@%d+%d" (Event.phase_name sp.sp_phase)
           (Event.outcome_name sp.sp_outcome) sp.sp_start sp.sp_dur)
       spans)

(* Field-by-field comparison of one trap.  The default set covers what
   the acceptance gate calls verdict/cycle divergences; [strict] adds
   every remaining recorded field. *)
let compare_event st ~line (recorded : Event.t) (fresh : Event.t) =
  let seq = recorded.ev_seq in
  let chk field conv a b = if a <> b then push st ~line ~seq field (conv a) (conv b) in
  chk "kind" Event.kind_name recorded.ev_kind fresh.ev_kind;
  chk "sysno" string_of_int recorded.ev_sysno fresh.ev_sysno;
  chk "sysname" Fun.id recorded.ev_sysname fresh.ev_sysname;
  chk "rip" (Printf.sprintf "0x%Lx") recorded.ev_rip fresh.ev_rip;
  chk "verdict" verdict_str recorded.ev_verdict fresh.ev_verdict;
  chk "depth" string_of_int recorded.ev_depth fresh.ev_depth;
  chk "dur_cycles" string_of_int recorded.ev_dur fresh.ev_dur;
  if st.strict then begin
    chk "seq" string_of_int recorded.ev_seq fresh.ev_seq;
    chk "start_cycles" string_of_int recorded.ev_start fresh.ev_start;
    chk "cache" cache_str recorded.ev_cache fresh.ev_cache;
    chk "ptrace_calls" string_of_int recorded.ev_ptrace_calls fresh.ev_ptrace_calls;
    chk "ptrace_words" string_of_int recorded.ev_ptrace_words fresh.ev_ptrace_words;
    chk "shadow_probes" string_of_int recorded.ev_shadow_probes fresh.ev_shadow_probes;
    chk "phases" spans_str recorded.ev_spans fresh.ev_spans
  end

let snapshot_of_input (i : Event.input) : Ptrace.snapshot =
  {
    Ptrace.sn_frames =
      List.map
        (fun (f : Event.frame) ->
          {
            Ptrace.fv_func = f.f_func;
            fv_callsite = f.f_callsite;
            fv_args = Array.copy f.f_args;
            fv_ret_token = f.f_ret;
            fv_base = f.f_base;
          })
        i.in_frames;
    sn_slots =
      List.map
        (fun (s : Event.slot_read) ->
          (s.sr_base, { Ptrace.sl_lo = s.sr_lo; sl_span = Array.copy s.sr_span }))
        i.in_slots;
    sn_calls = 0;  (* recomputed from the shape by [inject_snapshot] *)
  }

(* The injected trap source: recorded inputs with live-identical cost
   accounting.  Falls back to the live reads when the recorded stream
   is exhausted (extra traps) or a record carries no input. *)
let source_of st : Bastion.Monitor.trap_source =
  {
    Bastion.Monitor.ts_regs =
      (fun tracer ->
        match peek st with
        | Some (_, ev) -> (
          match ev.Event.ev_input with
          | Some i ->
            Ptrace.inject_regs tracer
              { Ptrace.rip = ev.ev_rip; sysno = ev.ev_sysno;
                args = Array.copy i.in_args }
          | None -> Ptrace.getregs tracer)
        | None -> Ptrace.getregs tracer);
    ts_snapshot =
      (fun tracer ~slot_span ->
        match peek st with
        | Some (_, ({ Event.ev_input = Some i; _ })) ->
          Ptrace.inject_snapshot tracer (snapshot_of_input i)
        | _ -> Ptrace.snapshot tracer ~slot_span);
  }

(* Wrap the monitor's tracer hook: run the real verification, compare
   the fresh event against the recorded one, then follow the
   *recorded* verdict so the machine re-walks the recorded control
   flow even when the two disagree. *)
let wrap_hook st (proc : Kernel.Process.t) =
  match proc.tracer_hook with
  | None -> ()
  | Some orig ->
    proc.tracer_hook <-
      Some
        (fun p ~sysno ~args ->
          st.last := None;
          let fresh_verdict = orig p ~sysno ~args in
          match !(st.last) with
          | None -> fresh_verdict
          | Some fresh -> (
            match peek st with
            | Some (line, recorded) ->
              compare_event st ~line recorded fresh;
              st.idx <- st.idx + 1;
              (match recorded.ev_verdict with
              | Event.Allowed -> Kernel.Process.Continue
              | Event.Denied { d_context; d_detail } ->
                Kernel.Process.Deny { context = d_context; detail = d_detail })
            | None ->
              st.extra <- st.extra + 1;
              if st.extra = 1 then
                push st ~line:0 ~seq:(-1) "extra-trap" "(end of recorded stream)"
                  (Printf.sprintf "%s(%d) at cycle %d" fresh.ev_sysname
                     fresh.ev_sysno fresh.ev_start);
              fresh_verdict))

let fresh_recorder st =
  let r = Obs.Recorder.create () in
  Obs.Recorder.set_on_event r (Some (fun ev -> st.last := Some ev));
  r

let finish st (tr : Trace.t) ~fresh_cycles : report =
  let n = Array.length st.expected in
  if st.idx < n then begin
    let line, first_missing = st.expected.(st.idx) in
    push st ~line ~seq:first_missing.Event.ev_seq "missing-traps"
      (Printf.sprintf "%d traps" n)
      (Printf.sprintf "%d traps (stream ends at seq %d)" st.idx
         first_missing.Event.ev_seq)
  end;
  if st.extra > 1 then
    push st ~line:0 ~seq:(-1) "extra-traps" "0"
      (Printf.sprintf "%d traps past the recorded stream" st.extra);
  if fresh_cycles <> tr.t_header.h_cycles then
    push st ~line:0 ~seq:(-1) "total-cycles"
      (string_of_int tr.t_header.h_cycles)
      (string_of_int fresh_cycles);
  {
    rp_file = tr.t_file;
    rp_header = tr.t_header;
    rp_traps_recorded = n;
    rp_traps_replayed = st.idx + st.extra;
    rp_cycles_replayed = fresh_cycles;
    rp_divergences = List.rev st.divs;
  }

let fingerprint_only_report (tr : Trace.t) ~expected_fp ~actual_fp : report =
  {
    rp_file = tr.t_file;
    rp_header = tr.t_header;
    rp_traps_recorded = List.length tr.t_events;
    rp_traps_replayed = 0;
    rp_cycles_replayed = 0;
    rp_divergences =
      [
        { dv_line = 1; dv_seq = -1; dv_field = "fingerprint";
          dv_recorded = expected_fp; dv_replayed = actual_fp };
      ];
  }

let new_state ~strict (tr : Trace.t) : state =
  {
    expected = Array.of_list tr.t_events;
    strict;
    idx = 0;
    extra = 0;
    divs = [];
    last = ref None;
  }

let replay_run ~strict (tr : Trace.t) ~app ~defense ~scale : report =
  let a =
    match app_of ~name:app ~scale with
    | Ok a -> a
    | Error msg -> malformed ~file:tr.t_file msg
  in
  let defense =
    match defense_of_key defense with
    | Some d -> d
    | None -> malformed ~file:tr.t_file (Printf.sprintf "unknown defense %S" defense)
  in
  let st = new_state ~strict tr in
  let recorder = fresh_recorder st in
  let prepared =
    Drivers.prepare ~trap_cache:tr.t_header.h_trap_cache
      ~pre_resolve:tr.t_header.h_pre_resolve
      ?prefilter:tr.t_header.h_prefilter ~recorder a defense
  in
  let actual_fp =
    match prepared.Drivers.pr_monitor with
    | Some mon -> fingerprint_of mon
    | None -> "-"
  in
  if not (String.equal actual_fp tr.t_header.h_fingerprint) then
    (* The hard gate: never judge a trace against different metadata. *)
    fingerprint_only_report tr ~expected_fp:tr.t_header.h_fingerprint ~actual_fp
  else begin
    (match prepared.Drivers.pr_monitor with
    | Some mon -> Bastion.Monitor.set_source mon (source_of st)
    | None -> ());
    wrap_hook st prepared.Drivers.pr_process;
    (* Following a corrupted recorded verdict can kill the replayed
       process; that is itself a divergence, not an engine failure. *)
    (try ignore (Drivers.execute prepared)
     with Drivers.Benign_run_died msg ->
       push st ~line:0 ~seq:(-1) "run-outcome" "clean exit" msg);
    finish st tr ~fresh_cycles:prepared.Drivers.pr_machine.stats.cycles
  end

let replay_attack ~strict (tr : Trace.t) ~attack_id ~config : report =
  let attack =
    match attack_of ~id:attack_id with
    | Ok a -> a
    | Error msg -> malformed ~file:tr.t_file msg
  in
  let config =
    match config_of_key config with
    | Some c -> c
    | None ->
      malformed ~file:tr.t_file (Printf.sprintf "unknown attack config %S" config)
  in
  let st = new_state ~strict tr in
  let recorder = fresh_recorder st in
  let machine : Machine.t option ref = ref None in
  let fp_mismatch = ref None in
  let on_session (s : Bastion.Api.session) =
    machine := Some s.Bastion.Api.machine;
    let actual_fp = fingerprint_of s.Bastion.Api.monitor in
    if String.equal actual_fp tr.t_header.h_fingerprint then begin
      Bastion.Monitor.set_source s.Bastion.Api.monitor (source_of st);
      wrap_hook st s.Bastion.Api.process
    end
    else fp_mismatch := Some actual_fp
  in
  ignore
    (Runner.run ~trap_cache:tr.t_header.h_trap_cache
       ~pre_resolve:tr.t_header.h_pre_resolve
       ?prefilter:tr.t_header.h_prefilter ~recorder ~on_session attack config);
  match !fp_mismatch with
  | Some actual_fp ->
    fingerprint_only_report tr ~expected_fp:tr.t_header.h_fingerprint ~actual_fp
  | None ->
    let fresh_cycles = match !machine with Some m -> m.stats.cycles | None -> 0 in
    finish st tr ~fresh_cycles

let replay ?(strict = false) (tr : Trace.t) : report =
  match tr.t_header.h_kind with
  | Trace.Run { app; defense; scale } -> replay_run ~strict tr ~app ~defense ~scale
  | Trace.Attack { attack_id; config } -> replay_attack ~strict tr ~attack_id ~config

(* ------------------------------------------------------------------ *)
(* Reporting *)

let divergence_to_json (d : divergence) : Report.Json.t =
  let open Report.Json in
  Obj
    [
      ("line", Num (float_of_int d.dv_line));
      ("seq", Num (float_of_int d.dv_seq));
      ("field", Str d.dv_field);
      ("recorded", Str d.dv_recorded);
      ("replayed", Str d.dv_replayed);
    ]

let report_to_json (r : report) : Report.Json.t =
  let open Report.Json in
  Obj
    [
      ("file", Str r.rp_file);
      ("header", Trace.header_to_json r.rp_header);
      ("traps_recorded", Num (float_of_int r.rp_traps_recorded));
      ("traps_replayed", Num (float_of_int r.rp_traps_replayed));
      ("cycles_recorded", Num (float_of_int r.rp_header.Trace.h_cycles));
      ("cycles_replayed", Num (float_of_int r.rp_cycles_replayed));
      ("ok", Bool (ok r));
      ("divergences", List (List.map divergence_to_json r.rp_divergences));
    ]

let kind_str = function
  | Trace.Run { app; defense; scale } -> Printf.sprintf "%s/%s [%s]" app defense scale
  | Trace.Attack { attack_id; config } -> Printf.sprintf "%s under %s" attack_id config

let render (r : report) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "replay %s: %s — %d traps recorded, %d replayed, %d divergence%s\n"
       r.rp_file (kind_str r.rp_header.Trace.h_kind) r.rp_traps_recorded
       r.rp_traps_replayed
       (List.length r.rp_divergences)
       (if List.length r.rp_divergences = 1 then "" else "s"));
  List.iter
    (fun d ->
      let where =
        if d.dv_line = 0 then Printf.sprintf "%s: run" r.rp_file
        else Printf.sprintf "%s:%d: trap seq %d" r.rp_file d.dv_line d.dv_seq
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s: %s: recorded %s, replayed %s\n" where d.dv_field
           d.dv_recorded d.dv_replayed))
    r.rp_divergences;
  Buffer.contents buf
