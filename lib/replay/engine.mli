(** The replay engine: offline re-verification of a recorded trap
    stream against the real monitor.

    A BASTION verdict is a pure function of the deployed metadata and
    the per-trap snapshot, and the machine model is deterministic — so
    replay is a deterministic re-execution of the recorded
    configuration in which every trap's register file and stack
    snapshot are *injected from the trace* (via the monitor's
    {!Bastion.Monitor.trap_source}, charging identical modelled costs)
    instead of read from the tracee.  The monitor re-judges each trap
    with its real verification path; the engine compares the fresh
    event against the recorded one field by field and reports
    divergences with trace line numbers.  Control flow always follows
    the *recorded* verdict, so one corrupted record cannot derail the
    comparison of everything after it.

    The metadata fingerprint is a hard gate: a trace recorded against a
    different bundle is reported as a single fingerprint divergence and
    never judged. *)

(** {1 Name registries}

    The header stores workloads, defenses and attack configurations as
    short stable keys; recording and replay resolve them through the
    same tables so both sides always build the same run. *)

val defense_key : Workloads.Drivers.defense -> string
val defense_of_key : string -> Workloads.Drivers.defense option
val config_key : Attacks.Runner.config -> string
val config_of_key : string -> Attacks.Runner.config option

(** Known workload scales: ["default"] (the paper-shaped runs) and
    ["small"] (a few hundred traps — the golden-corpus scale). *)
val scales : string list

val app_of : name:string -> scale:string -> (Workloads.Drivers.app, string) result
val attack_of : id:string -> (Attacks.Attack.t, string) result

(** {1 Recording} *)

(** Run a workload with the flight recorder armed and write the trace
    (header + JSONL stream) to [path]; returns the live measurement.
    The CLI's [--audit] sink and the in-process tests share this
    path, so recorded headers always match what {!replay} expects.
    @raise Trace.Malformed (line 1) on an unknown app/defense/scale key. *)
val record_run :
  ?trap_cache:bool -> ?pre_resolve:bool ->
  ?prefilter:Kernel.Seccomp.flow_mode ->
  app:string -> scale:string -> defense:Workloads.Drivers.defense ->
  path:string -> unit -> Workloads.Drivers.measurement

(** Run one catalog attack under one configuration, recording to
    [path]; returns the live outcome.  Undefended runs carry no
    monitor and cannot be recorded.
    @raise Trace.Malformed (line 1) on an unknown attack id, or if
    [config] is [Undefended]. *)
val record_attack :
  ?trap_cache:bool -> ?pre_resolve:bool ->
  ?prefilter:Kernel.Seccomp.flow_mode ->
  attack_id:string -> config:Attacks.Runner.config ->
  path:string -> unit -> Attacks.Runner.outcome

(** {1 Replay} *)

(** One field-level disagreement between the recorded stream and the
    fresh replay.  [dv_line] is the trace line (1-based; 0 for
    run-level divergences such as a missing trap or a cycle-total
    mismatch), [dv_seq] the trap sequence number (-1 for run-level). *)
type divergence = {
  dv_line : int;
  dv_seq : int;
  dv_field : string;
  dv_recorded : string;
  dv_replayed : string;
}

type report = {
  rp_file : string;
  rp_header : Trace.header;
  rp_traps_recorded : int;
  rp_traps_replayed : int;    (** traps the fresh run delivered *)
  rp_cycles_replayed : int;   (** final modelled cycle total of the replay *)
  rp_divergences : divergence list;  (** in discovery order *)
}

val ok : report -> bool

(** Re-run the recorded configuration with recorded snapshots injected
    and compare trap by trap.  The default comparison covers the
    verdict-relevant fields and the whole-trap cycle attribution
    (kind, syscall, rip, verdict + denial context/detail, stack depth,
    trap cycles) plus the run-level totals (trap count, final cycle
    total).  [strict] additionally compares every recorded field:
    sequence number, trap-entry cycles, per-phase spans, verdict-cache
    disposition and the ptrace/shadow traffic counters.
    @raise Trace.Malformed (line 1) on unknown header keys. *)
val replay : ?strict:bool -> Trace.t -> report

val report_to_json : report -> Report.Json.t

(** Human-readable report: a summary line plus one "file:line:" line
    per divergence. *)
val render : report -> string
