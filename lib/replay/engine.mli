(** The replay engine: offline re-verification of a recorded trap
    stream against the real monitor.

    A BASTION verdict is a pure function of the deployed metadata and
    the per-trap snapshot, and the machine model is deterministic — so
    replay is a deterministic re-execution of the recorded
    configuration in which every trap's register file and stack
    snapshot are *injected from the trace* (via the monitor's
    {!Bastion.Monitor.trap_source}, charging identical modelled costs)
    instead of read from the tracee.  The monitor re-judges each trap
    with its real verification path; the engine compares the fresh
    event against the recorded one field by field and reports
    divergences with trace line numbers.  Control flow always follows
    the *recorded* verdict, so one corrupted record cannot derail the
    comparison of everything after it.

    The metadata fingerprint is a hard gate for *strict* replay: a
    trace recorded against a different bundle is reported as a header
    mismatch and never judged.  {!diff_replay} is the other mode: it
    embraces a changed bundle and reports what moved — verdict flips,
    denial-context changes, tier movements, cycle deltas. *)

(** {1 Name registries}

    The header stores workloads, defenses and attack configurations as
    short stable keys; recording and replay resolve them through the
    same tables so both sides always build the same run. *)

val defense_key : Workloads.Drivers.defense -> string
val defense_of_key : string -> Workloads.Drivers.defense option
val config_key : Attacks.Runner.config -> string
val config_of_key : string -> Attacks.Runner.config option

(** Known workload scales: ["default"] (the paper-shaped runs) and
    ["small"] (a few hundred traps — the golden-corpus scale). *)
val scales : string list

val app_of : name:string -> scale:string -> (Workloads.Drivers.app, string) result
val attack_of : id:string -> (Attacks.Attack.t, string) result

(** {1 Recording} *)

(** Run a workload with the flight recorder armed and write the trace
    (header + JSONL stream) to [path]; returns the live measurement.
    The CLI's [--audit] sink and the in-process tests share this
    path, so recorded headers always match what {!replay} expects.
    @raise Trace.Malformed (line 1) on an unknown app/defense/scale key. *)
val record_run :
  ?trap_cache:bool -> ?pre_resolve:bool ->
  ?prefilter:Kernel.Seccomp.flow_mode ->
  app:string -> scale:string -> defense:Workloads.Drivers.defense ->
  path:string -> unit -> Workloads.Drivers.measurement

(** Run one catalog attack under one configuration, recording to
    [path]; returns the live outcome.  Undefended runs carry no
    monitor and cannot be recorded.
    @raise Trace.Malformed (line 1) on an unknown attack id, or if
    [config] is [Undefended]. *)
val record_attack :
  ?trap_cache:bool -> ?pre_resolve:bool ->
  ?prefilter:Kernel.Seccomp.flow_mode ->
  attack_id:string -> config:Attacks.Runner.config ->
  path:string -> unit -> Attacks.Runner.outcome

(** {1 Replay} *)

(** One field-level disagreement between the recorded stream and the
    fresh replay.  [dv_line] is the trace line (1-based; 0 for
    run-level divergences such as a missing trap or a cycle-total
    mismatch), [dv_seq] the trap sequence number (-1 for run-level). *)
type divergence = {
  dv_line : int;
  dv_seq : int;
  dv_field : string;
  dv_recorded : string;
  dv_replayed : string;
}

type report = {
  rp_file : string;
  rp_header : Trace.header;
  rp_traps_recorded : int;
  rp_traps_replayed : int;    (** traps the fresh run delivered *)
  rp_cycles_replayed : int;   (** final modelled cycle total of the replay *)
  rp_header_mismatch : (string * string) option;
      (** (recorded, deployed) metadata fingerprints when the hard gate
          refused to judge the stream; a run-level condition with its
          own report field — never a synthetic divergence row *)
  rp_divergences : divergence list;  (** in discovery order *)
}

(** No header mismatch and no divergences. *)
val ok : report -> bool

(** Re-run the recorded configuration with recorded snapshots injected
    and compare trap by trap.  The default comparison covers the
    verdict-relevant fields and the whole-trap cycle attribution
    (kind, syscall, rip, verdict + denial context/detail, stack depth,
    trap cycles) plus the run-level totals (trap count, final cycle
    total).  [strict] additionally compares every recorded field:
    sequence number, trap-entry cycles, per-phase spans, verdict-cache
    disposition and the ptrace/shadow traffic counters.
    @raise Trace.Malformed (line 1) on unknown header keys. *)
val replay : ?strict:bool -> Trace.t -> report

val report_to_json : report -> Report.Json.t

(** Human-readable report: a summary line plus one "file:line:" line
    per divergence. *)
val render : report -> string

(** {1 Differential replay}

    Re-execute a recorded trap stream through a monitor built from
    *changed* metadata: recorded snapshot inputs are injected wherever
    the recorded trap demonstrably is the live trap, control flow
    always follows the recorded behaviour, but every trap is judged by
    the fresh verification logic — and the report says what moved.
    With identical fingerprints a clean diff (zero flips, zero
    movements) is the golden corpus's regression oracle. *)

(** One verdict flip.  [fl_line]/[fl_seq] locate the recorded trap
    (0 / -1 for a fresh trap with no recorded counterpart — one the
    recorded run resolved at the seccomp pre-filter). *)
type flip = {
  fl_line : int;
  fl_seq : int;
  fl_sysno : int;
  fl_sysname : string;
  fl_rip : int64;
  fl_before : string;  (** recorded side of the verdict *)
  fl_after : string;   (** freshly judged side *)
}

(** Both sides denied, but the denial context or detail moved. *)
type context_move = {
  cm_line : int;
  cm_seq : int;
  cm_sysname : string;
  cm_before : string;
  cm_after : string;
}

type diff_report = {
  dr_file : string;
  dr_header : Trace.header;
      (** the recorded header with [h_against] set to the fresh
          bundle's fingerprint *)
  dr_recorded_fp : string;
  dr_against_fp : string;
  dr_same_metadata : bool;   (** fingerprints equal (the CI case) *)
  dr_traps_recorded : int;
  dr_traps_matched : int;
  dr_moved_to_prefilter : int;
      (** recorded traps the fresh automaton resolved at seccomp stage *)
  dr_fresh_unmatched : int;
      (** fresh traps absent from the recording (prefilter-resolved in
          the recorded run) *)
  dr_unconsumed_recorded : int;
      (** recorded traps the fresh run never delivered *)
  dr_allow_to_deny : flip list;   (** in stream order *)
  dr_deny_to_allow : flip list;
  dr_context_moves : context_move list;
  dr_tier_matrix : (string * string * int) list;
      (** (before, after, count) in ascending tier-rank order, zero
          cells omitted; the diagonal counts unmoved traps *)
  dr_tier_moves : int;            (** off-diagonal total *)
  dr_trap_cycle_delta : int;
      (** Σ fresh - recorded per-trap cycles over matched traps *)
  dr_cycles_recorded : int;
  dr_cycles_replayed : int;
  dr_run_outcome : string option;  (** [Some msg] if the replay died *)
}

(** Benign diff: no flips, no context moves, clean run outcome.  Tier
    movements and cycle deltas are informational, not failures. *)
val diff_ok : diff_report -> bool

(** The in-tree compile pass for the recorded configuration — the base
    whose instrumented program an edited metadata file restores
    against: [Metadata_io.load ~file (base_bundle tr).inst.iprog].
    @raise Trace.Malformed (line 1) on unknown header keys. *)
val base_bundle : Trace.t -> Bastion.Api.protected

(** Diff-replay [tr] against [against] (default: the in-tree bundle
    for the recorded configuration, rebuilt from the current compile
    pass — the regression-oracle mode).
    @raise Trace.Malformed (line 1) on unknown header keys or an
    undefended attack trace. *)
val diff_replay : ?against:Bastion.Api.protected -> Trace.t -> diff_report

(** Deterministic machine-readable report
    ([{"schema": "bastion-diff-replay/1", ...}]). *)
val diff_report_to_json : diff_report -> Report.Json.t

(** Human-readable "what moved" summary. *)
val render_diff : diff_report -> string
