(* The versioned JSONL trap-trace format.

   Line 1 is the self-describing header; every following line is one
   flight-recorder item in execution order.  The reader is a hard gate
   (mirroring the metadata v2 version check): unknown versions,
   malformed JSON, trailing garbage, truncated streams and
   duplicated/reordered trap lines all come back as a positioned
   [Malformed] — file:line — never as a stray exception. *)

let format_name = "bastion-trace"

(* v2 added the "prefilter" knob field: a tiered trace records only the
   traps that fell through the seccomp-stage automaton, so the reader
   must know to redeploy it or replay would see extra traps. *)
let current_version = 2

type kind =
  | Run of { app : string; defense : string; scale : string }
  | Attack of { attack_id : string; config : string }

type header = {
  h_version : int;
  h_kind : kind;
  h_trap_cache : bool;
  h_pre_resolve : bool;
  h_prefilter : Kernel.Seccomp.flow_mode option;
  h_fingerprint : string;
  h_against : string option;
      (* fingerprint of the changed metadata a diff-replay report was
         judged against; recording always leaves it [None], and the
         field is emitted sparsely, so recorded traces are unchanged *)
  h_traps : int;
  h_cycles : int;
}

exception Malformed of { file : string; line : int; msg : string }

let describe_malformed = function
  | Malformed { file; line; msg } ->
    Some (Printf.sprintf "%s:%d: %s" file line msg)
  | _ -> None

type t = {
  t_file : string;
  t_header : header;
  t_events : (int * Obs.Event.t) list;
}

(* --- emission --------------------------------------------------------- *)

let header_to_json (h : header) : Report.Json.t =
  let open Report.Json in
  Obj
    ([ ("format", Str format_name); ("version", Num (float_of_int h.h_version)) ]
    @ (match h.h_kind with
      | Run { app; defense; scale } ->
        [ ("kind", Str "run"); ("app", Str app); ("defense", Str defense);
          ("scale", Str scale) ]
      | Attack { attack_id; config } ->
        [ ("kind", Str "attack"); ("attack", Str attack_id);
          ("config", Str config) ])
    @ [
        ("trap_cache", Bool h.h_trap_cache);
        ("pre_resolve", Bool h.h_pre_resolve);
        ( "prefilter",
          Str
            (match h.h_prefilter with
            | None -> "off"
            | Some m -> Kernel.Seccomp.flow_mode_name m) );
        ("fingerprint", Str h.h_fingerprint);
      ]
    @ (match h.h_against with
      | None -> []
      | Some fp -> [ ("against", Str fp) ])
    @ [
        ("traps", Num (float_of_int h.h_traps));
        ("cycles", Num (float_of_int h.h_cycles));
      ])

(* --- parsing ---------------------------------------------------------- *)

let fail ~file ~line msg = raise (Malformed { file; line; msg })

let str_field ~file ~line name json =
  match Report.Json.member name json with
  | Some (Report.Json.Str s) -> s
  | Some _ -> fail ~file ~line (Printf.sprintf "header field %S is not a string" name)
  | None -> fail ~file ~line (Printf.sprintf "header is missing field %S" name)

let int_field ~file ~line name json =
  match Report.Json.member name json with
  | Some (Report.Json.Num f) when Float.is_integer f -> int_of_float f
  | Some _ -> fail ~file ~line (Printf.sprintf "header field %S is not an integer" name)
  | None -> fail ~file ~line (Printf.sprintf "header is missing field %S" name)

let bool_field ~file ~line name json =
  match Report.Json.member name json with
  | Some (Report.Json.Bool b) -> b
  | Some _ -> fail ~file ~line (Printf.sprintf "header field %S is not a boolean" name)
  | None -> fail ~file ~line (Printf.sprintf "header is missing field %S" name)

let parse_json ~file ~line text =
  match Report.Json.of_string text with
  | json -> json
  | exception Report.Json.Parse_error msg -> fail ~file ~line msg

let parse_header ~file ~line json =
  let fmt = str_field ~file ~line "format" json in
  if not (String.equal fmt format_name) then
    fail ~file ~line
      (Printf.sprintf "not a %s file (format is %S)" format_name fmt);
  let h_version = int_field ~file ~line "version" json in
  if h_version <> current_version then
    fail ~file ~line
      (Printf.sprintf "unsupported trace format version %d (this reader supports %d)"
         h_version current_version);
  let h_kind =
    match str_field ~file ~line "kind" json with
    | "run" ->
      Run
        {
          app = str_field ~file ~line "app" json;
          defense = str_field ~file ~line "defense" json;
          scale = str_field ~file ~line "scale" json;
        }
    | "attack" ->
      Attack
        {
          attack_id = str_field ~file ~line "attack" json;
          config = str_field ~file ~line "config" json;
        }
    | k -> fail ~file ~line (Printf.sprintf "unknown trace kind %S" k)
  in
  {
    h_version;
    h_kind;
    h_trap_cache = bool_field ~file ~line "trap_cache" json;
    h_pre_resolve = bool_field ~file ~line "pre_resolve" json;
    h_prefilter =
      (match str_field ~file ~line "prefilter" json with
      | "off" -> None
      | "tiered" -> Some Kernel.Seccomp.Flow_tiered
      | "prefilter-only" -> Some Kernel.Seccomp.Flow_standalone
      | m -> fail ~file ~line (Printf.sprintf "unknown prefilter mode %S" m));
    h_fingerprint = str_field ~file ~line "fingerprint" json;
    h_against =
      (match Report.Json.member "against" json with
      | Some (Report.Json.Str s) -> Some s
      | Some _ -> fail ~file ~line "header field \"against\" is not a string"
      | None -> None);
    h_traps = int_field ~file ~line "traps" json;
    h_cycles = int_field ~file ~line "cycles" json;
  }

let is_instant json =
  match Report.Json.member "kind" json with
  | Some (Report.Json.Str "instant") -> true
  | _ -> false

let read_string ?(file = "<string>") (text : string) : t =
  let lines =
    match String.split_on_char '\n' text with
    | [] -> []
    | parts -> (
      (* A trailing newline leaves one empty final chunk; drop it. *)
      match List.rev parts with
      | "" :: rest -> List.rev rest
      | _ -> parts)
  in
  match lines with
  | [] -> fail ~file ~line:1 "empty trace (no header line)"
  | header_line :: rest ->
    let header = parse_header ~file ~line:1 (parse_json ~file ~line:1 header_line) in
    let events = ref [] in
    let traps = ref 0 in
    List.iteri
      (fun i text ->
        let line = i + 2 in
        if String.length text = 0 then fail ~file ~line "empty line inside trace";
        let json = parse_json ~file ~line text in
        if not (is_instant json) then begin
          match Obs.Event.of_json json with
          | Error msg -> fail ~file ~line msg
          | Ok ev ->
            (* Sequence numbers are assigned contiguously from 0 at
               record time, so the i-th trap line must carry seq i: a
               duplicated, dropped or reordered line breaks the chain
               right here, with a line number attached. *)
            if ev.Obs.Event.ev_seq <> !traps then
              fail ~file ~line
                (Printf.sprintf
                   "trap record out of sequence: expected seq %d, found %d \
                    (duplicated, dropped or reordered line?)"
                   !traps ev.Obs.Event.ev_seq);
            incr traps;
            events := (line, ev) :: !events
        end)
      rest;
    if !traps <> header.h_traps then
      fail ~file ~line:(List.length lines)
        (Printf.sprintf "truncated trace: header promises %d traps, stream has %d"
           header.h_traps !traps);
    { t_file = file; t_header = header; t_events = List.rev !events }

let read_file (path : string) : t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  read_string ~file:path text
