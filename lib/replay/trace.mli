(** The versioned JSONL trap-trace format (`bastion run --audit`,
    `bastion attack --audit`).

    Line 1 is a self-describing header: format name, version, what was
    recorded (workload + defense, or attack + configuration), the
    monitor knobs (trap cache, pre-resolution), the metadata
    fingerprint the stream was judged against, and the recorded trap
    and cycle totals.  Every following line is one flight-recorder item
    in execution order: a structured trap record (the snapshot inputs
    the monitor consumed plus its verdict and per-phase cycle
    attribution) or a runtime-intrinsic instant, which the reader
    skips.

    The reader is a hard gate, mirroring the metadata v2 version
    check: unknown versions, malformed JSON, trailing garbage,
    truncated streams and duplicated/reordered trap lines are all
    rejected with a positioned {!Malformed} error (file:line), never a
    stray exception. *)

val format_name : string

(** The version this reader writes and accepts. *)
val current_version : int

(** What a trace recorded. *)
type kind =
  | Run of { app : string; defense : string; scale : string }
      (** a benign workload run: model name, defense key, scale key *)
  | Attack of { attack_id : string; config : string }
      (** one Table 6 catalog attack under one configuration *)

type header = {
  h_version : int;
  h_kind : kind;
  h_trap_cache : bool;      (** CT+CF verdict cache enabled *)
  h_pre_resolve : bool;     (** constant-argument pre-resolution *)
  h_prefilter : Kernel.Seccomp.flow_mode option;
      (** syscall-flow pre-filter deployed during the recorded run; a
          tiered trace holds only the traps that fell through the
          automaton, so replay must redeploy the same mode *)
  h_fingerprint : string;
      (** {!Bastion.Metadata.fingerprint} of the deployed bundle; "-"
          when the configuration carries no monitor *)
  h_against : string option;
      (** fingerprint of the *changed* metadata a differential replay
          judged this stream against; always [None] on recorded traces
          (the field is emitted sparsely, so recordings are
          byte-identical to pre-v3 ones) *)
  h_traps : int;            (** trap records that follow *)
  h_cycles : int;           (** final modelled cycle total of the run *)
}

(** A positioned reader error: [line] is 1-based within [file]. *)
exception Malformed of { file : string; line : int; msg : string }

(** "file:line: msg" for a {!Malformed}; [None] for other exceptions. *)
val describe_malformed : exn -> string option

(** A parsed trace: the header and every trap record, each with the
    1-based line it came from. *)
type t = {
  t_file : string;
  t_header : header;
  t_events : (int * Obs.Event.t) list;
}

val header_to_json : header -> Report.Json.t

(** Parse a whole trace from a string.  [file] labels errors (defaults
    to ["<string>"]).
    @raise Malformed on any format violation. *)
val read_string : ?file:string -> string -> t

(** @raise Malformed on any format violation.
    @raise Sys_error if the file cannot be read. *)
val read_file : string -> t
