(* A minimal self-contained JSON value type with an emitter and a
   recursive-descent parser — just enough for the bench harness's
   machine-readable output (`bench/main.exe --json`) and its round-trip
   test, with no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- emitting --------------------------------------------------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no representation for non-finite numbers; `%.12g` would
   print `nan`/`inf` and corrupt the document, so those emit `null`. *)
let number_to_string f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite -> "null"
  | _ ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.12g" f

let rec write buf indent (v : t) =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        write buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\": ";
        write buf (indent + 2) item)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let to_string (v : t) =
  let buf = Buffer.create 256 in
  write buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Single-line emission, for JSONL sinks (one record per line). *)
let rec write_compact buf (v : t) =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write_compact buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\":";
        write_compact buf item)
      fields;
    Buffer.add_char buf '}'

let to_compact_string (v : t) =
  let buf = Buffer.create 128 in
  write_compact buf v;
  Buffer.contents buf

let to_file path (v : t) =
  let oc = open_out path in
  output_string oc (to_string v);
  close_out oc

(* --- parsing ---------------------------------------------------------- *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  if
    c.pos + String.length word <= String.length c.text
    && String.equal (String.sub c.text c.pos (String.length word)) word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else fail c ("expected " ^ word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
      | Some '"' -> advance c; Buffer.add_char buf '"'; loop ()
      | Some '\\' -> advance c; Buffer.add_char buf '\\'; loop ()
      | Some '/' -> advance c; Buffer.add_char buf '/'; loop ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.text then fail c "short \\u escape";
        let hex = String.sub c.text c.pos 4 in
        c.pos <- c.pos + 4;
        let code =
          match int_of_string_opt ("0x" ^ hex) with
          | Some code -> code
          | None -> fail c ("bad \\u escape: " ^ hex)
        in
        (* Our emitter only writes \u for control chars; anything in the
           Latin-1 range is preserved, the rest degrades to '?'. *)
        Buffer.add_char buf (if code < 256 then Char.chr code else '?');
        loop ()
      | _ -> fail c "bad escape")
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec loop () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      loop ()
    | _ -> ()
  in
  loop ();
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail c ("bad number " ^ s)

let rec parse_value c : t =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin advance c; Obj [] end
    else begin
      let rec fields acc =
        skip_ws c;
        expect c '"';
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin advance c; List [] end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '"' ->
    advance c;
    Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s : t =
  let c = { text = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let of_file path : t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

(* --- accessors (for tests and downstream tooling) --------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
