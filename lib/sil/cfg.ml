(* Intraprocedural control-flow graph helpers over a function's blocks:
   successor/predecessor maps, reachability from the entry block,
   reverse postorder and iterative dominators.  The dataflow engine and
   the metadata-soundness linter (lib/analysis) are built on these. *)

module Sset = Set.Make (String)

let successors (term : Instr.terminator) : string list =
  match term with
  | Jump l -> [ l ]
  | Branch (_, l1, l2) -> if String.equal l1 l2 then [ l1 ] else [ l1; l2 ]
  | Ret _ | Halt -> []

let block_map (f : Func.t) : (string, Func.block) Hashtbl.t =
  let tbl = Hashtbl.create (List.length f.blocks) in
  List.iter (fun (b : Func.block) -> Hashtbl.replace tbl b.label b) f.blocks;
  tbl

let predecessors (f : Func.t) : (string, string list) Hashtbl.t =
  let tbl = Hashtbl.create (List.length f.blocks) in
  List.iter (fun (b : Func.block) -> Hashtbl.replace tbl b.label []) f.blocks;
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun succ ->
          match Hashtbl.find_opt tbl succ with
          | Some preds when not (List.mem b.label preds) ->
            Hashtbl.replace tbl succ (b.label :: preds)
          | Some _ | None -> ())
        (successors b.term))
    f.blocks;
  tbl

let reachable_blocks (f : Func.t) : Sset.t =
  let blocks = block_map f in
  let seen = ref Sset.empty in
  let rec visit label =
    if not (Sset.mem label !seen) then begin
      seen := Sset.add label !seen;
      match Hashtbl.find_opt blocks label with
      | Some b -> List.iter visit (successors b.term)
      | None -> ()
    end
  in
  visit (Func.entry_block f).label;
  !seen

(** Reverse postorder of the blocks reachable from entry (the entry
    block first; a natural iteration order for forward dataflow). *)
let reverse_postorder (f : Func.t) : string list =
  let blocks = block_map f in
  let seen = ref Sset.empty in
  let post = ref [] in
  let rec visit label =
    if not (Sset.mem label !seen) then begin
      seen := Sset.add label !seen;
      (match Hashtbl.find_opt blocks label with
      | Some b -> List.iter visit (successors b.term)
      | None -> ());
      post := label :: !post
    end
  in
  visit (Func.entry_block f).label;
  !post

(** Iterative dominator computation: [dominators f] maps every reachable
    block to the set of blocks that dominate it (itself included). *)
let dominators (f : Func.t) : (string, Sset.t) Hashtbl.t =
  let entry = (Func.entry_block f).label in
  let rpo = reverse_postorder f in
  let reach = Sset.of_list rpo in
  let all = Sset.of_list rpo in
  let preds = predecessors f in
  let doms = Hashtbl.create (List.length rpo) in
  Hashtbl.replace doms entry (Sset.singleton entry);
  List.iter
    (fun l -> if not (String.equal l entry) then Hashtbl.replace doms l all)
    rpo;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun label ->
        if not (String.equal label entry) then begin
          let preds =
            List.filter (fun p -> Sset.mem p reach)
              (Option.value ~default:[] (Hashtbl.find_opt preds label))
          in
          let meet =
            match preds with
            | [] -> Sset.empty
            | first :: rest ->
              List.fold_left
                (fun acc p -> Sset.inter acc (Hashtbl.find doms p))
                (Hashtbl.find doms first) rest
          in
          let next = Sset.add label meet in
          if not (Sset.equal next (Hashtbl.find doms label)) then begin
            Hashtbl.replace doms label next;
            changed := true
          end
        end)
      rpo
  done;
  doms

(** [dominates doms a b]: does block [a] dominate block [b]? *)
let dominates (doms : (string, Sset.t) Hashtbl.t) a b =
  match Hashtbl.find_opt doms b with
  | Some set -> Sset.mem a set
  | None -> false
