(** Intraprocedural CFG helpers over a function's blocks: successors,
    predecessors, reachability, reverse postorder and iterative
    dominators.  The dataflow engine and the metadata-soundness linter
    are built on these. *)

module Sset : Set.S with type elt = string

(** Successor labels of a terminator (deduplicated for the degenerate
    [Branch (_, l, l)]). *)
val successors : Instr.terminator -> string list

val block_map : Func.t -> (string, Func.block) Hashtbl.t
val predecessors : Func.t -> (string, string list) Hashtbl.t

(** Blocks reachable from the entry block. *)
val reachable_blocks : Func.t -> Sset.t

(** Reverse postorder of the reachable blocks, entry first. *)
val reverse_postorder : Func.t -> string list

(** [dominators f] maps every reachable block to the set of blocks
    dominating it (itself included). *)
val dominators : Func.t -> (string, Sset.t) Hashtbl.t

(** [dominates doms a b]: does block [a] dominate block [b]? *)
val dominates : (string, Sset.t) Hashtbl.t -> string -> string -> bool
