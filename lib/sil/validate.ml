(* Well-formedness checking for programs.  Run by workload constructors
   and tests so that malformed IR fails fast rather than misbehaving in
   the interpreter. *)

type error = { loc : string; message : string }

let error loc fmt = Printf.ksprintf (fun message -> { loc; message }) fmt

let pp_error fmt (e : error) = Format.fprintf fmt "%s: %s" e.loc e.message

let check_func (prog : Prog.t) (f : Func.t) : error list =
  let errs = ref [] in
  let add loc fmt = Printf.ksprintf (fun m -> errs := { loc; message = m } :: !errs) fmt in
  let labels =
    List.fold_left (fun acc (b : Func.block) -> b.label :: acc) [] f.blocks
  in
  let distinct = List.sort_uniq String.compare labels in
  if List.length distinct <> List.length labels then
    add f.fname "duplicate block labels";
  let var_known v = List.mem_assoc v (Func.all_vars f) in
  (* Aggregates (structs, arrays) live in memory and are manipulated
     through pointers obtained with [Addr_of]; a bare aggregate-typed
     variable in a scalar position would read a single word of it. *)
  let check_scalar loc v =
    if var_known v then
      match Func.var_type f v with
      | Types.Struct _ | Types.Array _ ->
        add loc "aggregate variable %s#%d used as a scalar operand" v.vname v.vid
      | Types.Void | Types.I64 | Types.Ptr _ | Types.Func _ -> ()
  in
  let check_operand loc op =
    match (op : Operand.t) with
    | Var v ->
      if not (var_known v) then add loc "unknown variable %s#%d" v.vname v.vid
      else check_scalar loc v
    | Global g ->
      if not (List.exists (fun (x : Prog.global) -> String.equal x.gname g) prog.globals)
      then add loc "unknown global %s" g
    | Func_addr fn ->
      if not (Prog.mem_func prog fn) then add loc "address of unknown function %s" fn
    | Const _ | Cstr _ | Null -> ()
  in
  let check_place loc p =
    List.iter (check_operand loc) (Place.operands p);
    (match (p : Place.t) with
    | Lvar v -> if not (var_known v) then add loc "unknown variable %s#%d" v.vname v.vid
    | Lglobal g ->
      if not (List.exists (fun (x : Prog.global) -> String.equal x.gname g) prog.globals)
      then add loc "unknown global %s" g
    | Lfield (_, sname, field) -> (
      match Hashtbl.find_opt prog.structs sname with
      | None -> add loc "unknown struct %s" sname
      | Some def ->
        if not (List.mem_assoc field def.Types.fields) then
          add loc "struct %s has no field %s" sname field)
    | Lindex _ | Lderef _ -> ())
  in
  List.iter
    (fun (loc, ins) ->
      let locs = Loc.to_string loc in
      List.iter (check_operand locs) (Instr.operands ins);
      (match (ins : Instr.t) with
      | Assign (v, rv) ->
        if not (var_known v) then add locs "assign to unknown variable %s#%d" v.vname v.vid
        else check_scalar locs v;
        (match rv with
        | Load p | Addr_of p -> check_place locs p
        | Use _ | Binop _ -> ())
      | Store (p, _) ->
        (match (p : Place.t) with
        | Lvar v when var_known v -> check_scalar locs v
        | _ -> ());
        check_place locs p
      | Call { dst = Some v; _ } when not (var_known v) ->
        add locs "call result assigned to unknown variable %s#%d" v.vname v.vid
      | Call { target = Direct callee; args; dst } -> (
        (match dst with Some v -> check_scalar locs v | None -> ());
        match Hashtbl.find_opt prog.funcs callee with
        | None -> add locs "call to unknown function %s" callee
        | Some g ->
          let arity = List.length g.Func.params in
          let n = List.length args in
          (* Syscall stubs follow the 6-register kernel ABI: fewer
             arguments are allowed (unused registers read as zero). *)
          let ok = if Func.is_syscall_stub g then n <= arity else n = arity in
          if not ok then
            add locs "call to %s: %d args, expected %d" callee n arity)
      | Call { target = Indirect _; dst; _ } ->
        (match dst with Some v -> check_scalar locs v | None -> ())))
    (Func.instrs f);
  List.iter
    (fun (b : Func.block) ->
      let check_label l =
        if not (List.mem l labels) then
          add (f.fname ^ ":" ^ b.label) "jump to unknown label %s" l
      in
      match b.term with
      | Jump l -> check_label l
      | Branch (op, l1, l2) ->
        check_operand (f.fname ^ ":" ^ b.label) op;
        check_label l1;
        check_label l2
      | Ret (Some op) -> check_operand (f.fname ^ ":" ^ b.label) op
      | Ret None | Halt -> ())
    f.blocks;
  List.rev !errs

let check (prog : Prog.t) : error list =
  let entry_errs =
    if Prog.mem_func prog prog.entry then []
    else [ error "program" "entry function %s not defined" prog.entry ]
  in
  (* The function table tolerates shadowed bindings (Hashtbl.add); a
     program carrying two functions of the same name is malformed — the
     layout and the monitor's metadata both key on the name. *)
  let dup_errs =
    let names = Hashtbl.fold (fun name _ acc -> name :: acc) prog.funcs [] in
    let sorted = List.sort String.compare names in
    let rec dups acc = function
      | a :: (b :: _ as rest) ->
        dups (if String.equal a b && not (List.mem a acc) then a :: acc else acc) rest
      | [ _ ] | [] -> acc
    in
    List.map (fun n -> error "program" "function %s defined more than once" n)
      (List.rev (dups [] sorted))
  in
  entry_errs @ dup_errs @ List.concat_map (check_func prog) (Prog.functions prog)

(** Raise [Invalid_argument] with a readable report if the program is
    malformed. *)
let check_exn (prog : Prog.t) =
  match check prog with
  | [] -> ()
  | errs ->
    let buf = Buffer.create 256 in
    List.iter
      (fun e -> Buffer.add_string buf (Format.asprintf "%a\n" pp_error e))
      errs;
    invalid_arg ("Validate.check_exn:\n" ^ Buffer.contents buf)
