(** Well-formedness checking for programs: unknown variables, globals,
    callees, labels and struct fields; call arities (syscall stubs may
    be called with fewer arguments than the 6-register kernel ABI);
    duplicate function names (the function table tolerates shadowed
    bindings, the layout does not); aggregate-typed variables used in
    scalar positions (aggregates are only manipulated through
    pointers). *)

type error = { loc : string; message : string }

val error : string -> ('a, unit, string, error) format4 -> 'a
val pp_error : Format.formatter -> error -> unit

(** All problems found, empty when the program is well-formed. *)
val check : Prog.t -> error list

(** Like {!check} but raises [Invalid_argument] with a readable report. *)
val check_exn : Prog.t -> unit
