(* Load drivers: run an application model under a chosen defense
   configuration and report the paper's metrics.

   The defense axis reproduces Figure 3's configurations (vanilla, LLVM
   CFI, CET, CET+CT, CET+CT+CF, CET+CT+CF+AI) plus the Table 7
   filesystem-extension rows. *)

type defense =
  | Vanilla
  | Llvm_cfi
  | Cet_only
  | Bastion_ct          (** CET + Call-Type *)
  | Bastion_ct_cf       (** CET + Call-Type + Control-Flow *)
  | Bastion_full        (** CET + all three contexts *)
  | Bastion_fs of Bastion.Monitor.fs_mode
      (** CET + all three contexts + §11.2 filesystem extension *)

let defense_name = function
  | Vanilla -> "Vanilla"
  | Llvm_cfi -> "LLVM CFI"
  | Cet_only -> "CET"
  | Bastion_ct -> "CET+CT"
  | Bastion_ct_cf -> "CET+CT+CF"
  | Bastion_full -> "CET+CT+CF+AI"
  | Bastion_fs Bastion.Monitor.Fs_hook_only -> "Bastion+fs (seccomp hook only)"
  | Bastion_fs Bastion.Monitor.Fs_fetch_only -> "Bastion+fs (fetch process state)"
  | Bastion_fs Bastion.Monitor.Fs_full -> "Bastion+fs (full context checking)"
  | Bastion_fs Bastion.Monitor.Fs_off -> "Bastion+fs (off)"

let figure3_defenses =
  [ Vanilla; Llvm_cfi; Cet_only; Bastion_ct; Bastion_ct_cf; Bastion_full ]

let table7_defenses =
  [
    Bastion_fs Bastion.Monitor.Fs_hook_only;
    Bastion_fs Bastion.Monitor.Fs_fetch_only;
    Bastion_fs Bastion.Monitor.Fs_full;
  ]

(** An application model packaged for the drivers. *)
type app = {
  app_name : string;
  app_key : string;  (** cache key: name + parameter fingerprint *)
  prog : Sil.Prog.t Lazy.t;
  prog_fs : Sil.Prog.t Lazy.t;  (** same program; separate lazy for fs runs *)
  setup : Kernel.Process.t -> unit;
  metric : Kernel.Process.t -> Machine.t -> float;
  metric_name : string;
  higher_is_better : bool;
}

let nginx ?(params = Nginx_model.default) () =
  let build = lazy (Nginx_model.build params) in
  {
    app_name = "NGINX";
    app_key = Printf.sprintf "NGINX-%d" (Hashtbl.hash params);
    prog = build;
    prog_fs = build;
    setup = Nginx_model.setup params;
    metric = Nginx_model.throughput_mb_s;
    metric_name = "MB/sec";
    higher_is_better = true;
  }

let sqlite ?(params = Sqlite_model.default) () =
  let build = lazy (Sqlite_model.build params) in
  {
    app_name = "SQLite";
    app_key = Printf.sprintf "SQLite-%d" (Hashtbl.hash params);
    prog = build;
    prog_fs = build;
    setup = Sqlite_model.setup params;
    metric = Sqlite_model.notpm;
    metric_name = "NOTPM";
    higher_is_better = true;
  }

let vsftpd ?(params = Vsftpd_model.default) () =
  let build = lazy (Vsftpd_model.build params) in
  {
    app_name = "vsftpd";
    app_key = Printf.sprintf "vsftpd-%d" (Hashtbl.hash params);
    prog = build;
    prog_fs = build;
    setup = Vsftpd_model.setup params;
    metric = Vsftpd_model.seconds_per_download params;
    metric_name = "ms/download";
    higher_is_better = false;
  }

type measurement = {
  m_app : string;
  m_defense : defense;
  m_metric : float;
  m_cycles : int;
  m_traps : int;
  m_syscalls : int;
  m_monitor_init_cycles : int;
  m_process : Kernel.Process.t;
  m_machine : Machine.t;
  m_monitor : Bastion.Monitor.t option;
}

exception Benign_run_died of string

(* Cache of protected programs: the compile pass is shared between the
   CT / CT+CF / full configurations of the same app. *)
let protect_cache : (string, Bastion.Api.protected) Hashtbl.t = Hashtbl.create 8
let protect_fs_cache : (string, Bastion.Api.protected) Hashtbl.t = Hashtbl.create 8

let preresolve_cache : (string, Bastion.Api.protected) Hashtbl.t = Hashtbl.create 8

(* The drivers fail fast on unsound metadata: every protect pass below
   runs the registered lint validator (ROADMAP "linter as a library
   gate").  Registration happens here, at module initialisation, so
   linking the workloads library is enough to arm the gate. *)
let () = Bastion_analysis.Lint.register_api_validator ()

let protected_of ?(pre_resolve = false) (app : app) ~fs =
  let cache = if fs then protect_fs_cache else protect_cache in
  let base =
    match Hashtbl.find_opt cache app.app_key with
    | Some p -> p
    | None ->
      let p =
        Bastion.Api.protect ~protect_filesystem:fs ~validate:true
          (Lazy.force (if fs then app.prog_fs else app.prog))
      in
      Hashtbl.replace cache app.app_key p;
      p
  in
  if not pre_resolve then base
  else begin
    (* Enrichment returns a fresh bundle, so the shared cache entry
       above is never mutated. *)
    let key = app.app_key ^ if fs then "+fs" else "" in
    match Hashtbl.find_opt preresolve_cache key with
    | Some p -> p
    | None ->
      let p = Bastion_analysis.Preresolve.enrich base in
      Hashtbl.replace preresolve_cache key p;
      p
  end

(* The syscall-flow digraph is a pure function of the instrumented
   program, so it is shared across defense configurations (and across
   pre-resolution, which only changes deploy-time constants). *)
let flow_spec_cache : (string, Defenses.Flow_prefilter.spec) Hashtbl.t =
  Hashtbl.create 8

let flow_spec_of (app : app) ~fs =
  let key = app.app_key ^ if fs then "+fs" else "" in
  match Hashtbl.find_opt flow_spec_cache key with
  | Some s -> s
  | None ->
    let s = Bastion_analysis.Flowgraph.extract (protected_of app ~fs) in
    Hashtbl.replace flow_spec_cache key s;
    s

(* A session staged up to the brink of execution: everything [run] does
   before [Machine.run].  Splitting here lets the replay engine reach
   in between boot and execution — swap the monitor's trap source,
   wrap the tracer hook — and then drive the identical measurement
   path. *)
type prepared = {
  pr_app : app;
  pr_defense : defense;
  pr_machine : Machine.t;
  pr_process : Kernel.Process.t;
  pr_monitor : Bastion.Monitor.t option;
}

let prepare ?(cost = Machine.Cost.default) ?(trap_cache = true) ?(pre_resolve = false)
    ?(taint_cheap_path = true) ?prefilter ?bundle ?recorder (app : app)
    (defense : defense) : prepared =
  let machine_config cet = { Machine.default_config with cet; cost } in
  (* [bundle] overrides the compile pass entirely: the differential
     replay engine deploys a restored (possibly hand-edited) metadata
     bundle through the exact driver path a recording used.  Overridden
     bundles bypass the protect-time lint gate on purpose — judging
     what a metadata edit changes requires deploying it. *)
  let bundle_for ~fs =
    match bundle with Some b -> b | None -> protected_of ~pre_resolve app ~fs
  in
  let machine, process, monitor =
    match defense with
    | Vanilla ->
      let m, p =
        Bastion.Api.launch_unprotected ~machine_config:(machine_config false)
          (Lazy.force app.prog)
      in
      (m, p, None)
    | Llvm_cfi ->
      let prog = Lazy.force app.prog in
      let m, p =
        Bastion.Api.launch_unprotected ~machine_config:(machine_config false) prog
      in
      Defenses.Llvm_cfi.install (Defenses.Llvm_cfi.build prog) m;
      (m, p, None)
    | Cet_only ->
      let m, p =
        Bastion.Api.launch_unprotected ~machine_config:(machine_config true)
          (Lazy.force app.prog)
      in
      (m, p, None)
    | Bastion_ct | Bastion_ct_cf | Bastion_full ->
      let contexts =
        match defense with
        | Bastion_ct -> { Bastion.Monitor.ct = true; cf = false; ai = false }
        | Bastion_ct_cf -> { Bastion.Monitor.ct = true; cf = true; ai = false }
        | _ -> Bastion.Monitor.all_contexts
      in
      let session =
        Bastion.Api.launch ~machine_config:(machine_config true)
          ~monitor_config:
            { Bastion.Monitor.default_config with contexts; trap_cache;
              taint_cheap_path }
          ?recorder (bundle_for ~fs:false) ()
      in
      (session.machine, session.process, Some session.monitor)
    | Bastion_fs mode ->
      let session =
        Bastion.Api.launch ~machine_config:(machine_config true)
          ~monitor_config:
            { Bastion.Monitor.default_config with fs_mode = mode; trap_cache;
              taint_cheap_path }
          ?recorder (bundle_for ~fs:true) ()
      in
      (session.machine, session.process, Some session.monitor)
  in
  (* Deploy the syscall-flow pre-filter, if requested, on top of the
     attached monitor (non-BASTION defenses have no filter to extend:
     the knob is a no-op there, like on a vanilla run). *)
  (match (prefilter, monitor) with
  | Some mode, Some mon ->
    let fs = match defense with Bastion_fs _ -> true | _ -> false in
    (* With an overridden bundle, the automaton must be extracted from
       *that* metadata — the cached spec belongs to the in-tree pass. *)
    let spec =
      match bundle with
      | Some b -> Bastion_analysis.Flowgraph.extract b
      | None -> flow_spec_of app ~fs
    in
    ignore
      (Bastion_analysis.Flowgraph.attach ~spec ~mode (bundle_for ~fs)
         ~monitor:mon ~process)
  | _ -> ());
  app.setup process;
  { pr_app = app; pr_defense = defense; pr_machine = machine;
    pr_process = process; pr_monitor = monitor }

let execute (p : prepared) : measurement =
  let { pr_app = app; pr_defense = defense; pr_machine = machine;
        pr_process = process; pr_monitor = monitor } = p in
  (match Machine.run machine with
  | Machine.Exited _ -> ()
  | Machine.Faulted f ->
    raise
      (Benign_run_died
         (Printf.sprintf "%s under %s: %s" app.app_name (defense_name defense)
            (Machine.fault_to_string f))));
  {
    m_app = app.app_name;
    m_defense = defense;
    m_metric = app.metric process machine;
    m_cycles = machine.stats.cycles;
    m_traps = process.trap_count;
    m_syscalls = machine.stats.syscalls;
    m_monitor_init_cycles =
      (match monitor with Some m -> m.Bastion.Monitor.init_cycles | None -> 0);
    m_process = process;
    m_machine = machine;
    m_monitor = monitor;
  }

let run ?cost ?trap_cache ?pre_resolve ?taint_cheap_path ?prefilter ?bundle
    ?recorder (app : app) (defense : defense) : measurement =
  execute
    (prepare ?cost ?trap_cache ?pre_resolve ?taint_cheap_path ?prefilter
       ?bundle ?recorder app defense)

(** Relative overhead (in %) of a measurement against a baseline,
    respecting the metric's direction. *)
let overhead_pct ~(baseline : measurement) (m : measurement) ~higher_is_better =
  if higher_is_better then (baseline.m_metric -. m.m_metric) /. baseline.m_metric *. 100.0
  else (m.m_metric -. baseline.m_metric) /. baseline.m_metric *. 100.0

(* ------------------------------------------------------------------ *)
(* The multi-tracee driver                                             *)

module Pool = Bastion_mt.Monitor_pool

type multi = {
  mm_tracees : measurement array;
  mm_pool : Pool.stats;
  mm_wall_seconds : float;
  mm_serial_cycles : int;
  mm_makespan_cycles : int;
  mm_plan : Pool.job_plan;
}

let sum_traps (m : multi) =
  Array.fold_left (fun acc t -> acc + t.m_traps) 0 m.mm_tracees

let run_multi ?cost ?trap_cache ?pre_resolve ?prefilter ?queue_capacity ?batch
    ?(scheduler = Pool.Static) ?shard_recorders ~shards ~tracees (app : app)
    (defense : defense) : multi =
  if tracees < 1 then invalid_arg "Drivers.run_multi: tracees must be >= 1";
  (match shard_recorders with
  | Some rs when Array.length rs <> shards ->
    invalid_arg "Drivers.run_multi: shard_recorders must have one slot per shard"
  | _ -> ());
  (* A shard recorder's lane stamping relies on the static pin (its
     tracees run serially on its own domain); under a stealing policy
     a tracee may execute anywhere, so the combination is rejected
     rather than silently racy. *)
  (match (shard_recorders, scheduler) with
  | Some _, (Pool.Least_loaded | Pool.Steal) ->
    invalid_arg
      "Drivers.run_multi: shard_recorders requires the static scheduler"
  | _ -> ());
  (* Warm the shared compile-pass caches on this domain before any
     worker spawns: afterwards the worker domains only ever *read* the
     protect caches and the (already forced) lazy programs. *)
  (match defense with
  | Vanilla | Llvm_cfi | Cet_only -> ignore (Lazy.force app.prog)
  | Bastion_ct | Bastion_ct_cf | Bastion_full ->
    ignore (protected_of ?pre_resolve app ~fs:false);
    if prefilter <> None then ignore (flow_spec_of app ~fs:false)
  | Bastion_fs _ ->
    ignore (protected_of ?pre_resolve app ~fs:true);
    if prefilter <> None then ignore (flow_spec_of app ~fs:true));
  let config = Pool.config ?queue_capacity ?batch ~policy:scheduler ~shards () in
  let job tracee () =
    let recorder =
      match shard_recorders with
      | None -> None
      | Some rs ->
        let shard = Pool.shard_of_tracee ~shards tracee in
        let r = rs.(shard) in
        (* The job runs on its shard's own domain and jobs within a
           shard are serial, so stamping the shared shard recorder's
           lane per tracee is race-free. *)
        Obs.Recorder.set_lane r ~shard ~tracee;
        Some r
    in
    run ?cost ?trap_cache ?pre_resolve ?prefilter ?recorder app defense
  in
  let t0 = Unix.gettimeofday () in
  let results, pool = Pool.run_tracees ~config (Array.init tracees job) in
  let wall = Unix.gettimeofday () -. t0 in
  (* Modelled makespan comes from the deterministic job plan over the
     measured per-tracee cycles — the deployment where every shard has
     its own core and placement follows the chosen policy.  For
     [Static] this is exactly the old group-by-home-shard maximum. *)
  let plan =
    Pool.plan_jobs ~policy:scheduler ~shards
      (Array.map (fun m -> m.m_cycles) results)
  in
  {
    mm_tracees = results;
    mm_pool = pool;
    mm_wall_seconds = wall;
    mm_serial_cycles = Array.fold_left (fun acc m -> acc + m.m_cycles) 0 results;
    mm_makespan_cycles = plan.Pool.jp_makespan;
    mm_plan = plan;
  }
