(** Load drivers: run an application model under a defense
    configuration and report the paper's metrics.  The defense axis
    reproduces Figure 3's configurations plus the Table 7 rows. *)

type defense =
  | Vanilla
  | Llvm_cfi
  | Cet_only
  | Bastion_ct          (** CET + Call-Type *)
  | Bastion_ct_cf       (** CET + Call-Type + Control-Flow *)
  | Bastion_full        (** CET + all three contexts *)
  | Bastion_fs of Bastion.Monitor.fs_mode
      (** CET + all three contexts + the §11.2 filesystem extension *)

val defense_name : defense -> string
val figure3_defenses : defense list
val table7_defenses : defense list

(** An application model packaged for the drivers. *)
type app = {
  app_name : string;
  app_key : string;   (** cache key: name + parameter fingerprint *)
  prog : Sil.Prog.t Lazy.t;
  prog_fs : Sil.Prog.t Lazy.t;
  setup : Kernel.Process.t -> unit;
  metric : Kernel.Process.t -> Machine.t -> float;
  metric_name : string;
  higher_is_better : bool;
}

val nginx : ?params:Nginx_model.params -> unit -> app
val sqlite : ?params:Sqlite_model.params -> unit -> app
val vsftpd : ?params:Vsftpd_model.params -> unit -> app

type measurement = {
  m_app : string;
  m_defense : defense;
  m_metric : float;
  m_cycles : int;
  m_traps : int;
  m_syscalls : int;
  m_monitor_init_cycles : int;
  m_process : Kernel.Process.t;
  m_machine : Machine.t;
  m_monitor : Bastion.Monitor.t option;
}

(** A benign run died — a reproduction bug, never expected. *)
exception Benign_run_died of string

(** The (cached) compile-pass output for an app; [pre_resolve] layers
    constant-argument pre-resolution on top (as a fresh bundle — the
    cached one is never mutated). *)
val protected_of : ?pre_resolve:bool -> app -> fs:bool -> Bastion.Api.protected

(** The (cached) syscall-flow digraph for an app — the deployment spec
    behind the seccomp-stage pre-filter.  Pure function of the
    instrumented program, shared across defense configurations. *)
val flow_spec_of : app -> fs:bool -> Defenses.Flow_prefilter.spec

(** A session staged up to the brink of execution: booted, runtime
    installed, monitor attached, workload setup done — everything
    {!run} does before [Machine.run].  The replay engine uses the gap
    to swap the monitor's trap source and wrap the tracer hook before
    {!execute} drives the identical measurement path. *)
type prepared = {
  pr_app : app;
  pr_defense : defense;
  pr_machine : Machine.t;
  pr_process : Kernel.Process.t;
  pr_monitor : Bastion.Monitor.t option;
}

(** Stage an app under a defense: boot, wire, attach, setup — stop
    short of execution.  Same optional arguments as {!run}. *)
val prepare :
  ?cost:Machine.Cost.t -> ?trap_cache:bool -> ?pre_resolve:bool ->
  ?taint_cheap_path:bool -> ?prefilter:Kernel.Seccomp.flow_mode ->
  ?bundle:Bastion.Api.protected ->
  ?recorder:Obs.Recorder.t -> app -> defense -> prepared

(** Execute a prepared session and measure it.
    @raise Benign_run_died if the run faults. *)
val execute : prepared -> measurement

(** Run an app under a defense ([execute] of [prepare]).  [cost]
    overrides the machine cost table (e.g.
    {!Machine.Cost.in_kernel_monitor}); [trap_cache] toggles the
    monitor's CT+CF verdict cache (default on), for the fast-path
    ablation; [pre_resolve] enables static pre-resolution of AI slots
    (default off), for the static-analysis ablation; [taint_cheap_path]
    toggles the single-probe verification of rank-untainted slots
    (default on; only observable with [pre_resolve], for the taint-rank
    ablation); [prefilter]
    deploys the syscall-flow pre-filter in the given mode on the
    monitored configurations (tiered resolves eligible traps at seccomp
    cost, standalone models the pre-filter as the *only* defense —
    ignored by the unmonitored baselines); [recorder] wires a
    flight recorder through the monitored configurations (ignored by
    the unmonitored baselines — observation never changes a run's
    cycles or verdicts); [bundle] overrides the compile pass with a
    restored (possibly edited) metadata bundle — the differential
    replay engine's seam; overridden bundles bypass the protect-time
    lint gate on purpose, and the pre-filter spec (when [prefilter] is
    also given) is re-extracted from the override.
    @raise Benign_run_died if the run faults. *)
val run :
  ?cost:Machine.Cost.t -> ?trap_cache:bool -> ?pre_resolve:bool ->
  ?taint_cheap_path:bool -> ?prefilter:Kernel.Seccomp.flow_mode ->
  ?bundle:Bastion.Api.protected ->
  ?recorder:Obs.Recorder.t -> app -> defense -> measurement

(** Relative overhead (%) against a baseline measurement, respecting the
    metric direction. *)
val overhead_pct : baseline:measurement -> measurement -> higher_is_better:bool -> float

(** A sharded multi-tracee run: [tracees] concurrent instances of one
    workload model, sharded over the monitor pool's worker domains. *)
type multi = {
  mm_tracees : measurement array;   (** per-tracee results, tracee order *)
  mm_pool : Bastion_mt.Monitor_pool.stats;
  mm_wall_seconds : float;          (** host wall clock around the pool *)
  mm_serial_cycles : int;           (** Σ per-tracee modelled cycles *)
  mm_makespan_cycles : int;
      (** modelled makespan: the heaviest shard's cycle sum under the
          chosen scheduler's job plan (each shard on its own modelled
          core) *)
  mm_plan : Bastion_mt.Monitor_pool.job_plan;
      (** the deterministic placement behind [mm_makespan_cycles] —
          per-shard cycles, steals and migrations included *)
}

(** Total TRACE stops across the tracees. *)
val sum_traps : multi -> int

(** Run [tracees] instances of [app] under [defense] across [shards]
    worker domains.  Every tracee gets its own session (machine,
    process, runtime, monitor, verdict cache), created and driven
    entirely on its owning shard's domain; [shard_recorders], when
    given, supplies each *shard* its own flight recorder (its tracees
    run serially, so the recorder never crosses a domain).  Per-tracee
    results are byte-identical to a serial [run] loop for every shard
    count *and every scheduler*: a tracee's session never outlives its
    executing domain, so placement cannot change its verdicts or
    cycles.  [scheduler] (default [Static]) picks the pool's placement
    policy; [shard_recorders] requires the static scheduler (lane
    stamping relies on the static pin) and the combination is rejected
    otherwise.  The shared compile-pass caches are warmed before any
    worker spawns.
    @raise Benign_run_died if any tracee faults (lowest tracee wins). *)
val run_multi :
  ?cost:Machine.Cost.t -> ?trap_cache:bool -> ?pre_resolve:bool ->
  ?prefilter:Kernel.Seccomp.flow_mode ->
  ?queue_capacity:int -> ?batch:int ->
  ?scheduler:Bastion_mt.Monitor_pool.policy ->
  ?shard_recorders:Obs.Recorder.t array ->
  shards:int -> tracees:int -> app -> defense -> multi
