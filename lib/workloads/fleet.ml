(* The open-loop fleet driver: a constant-rate arrival process over K
   heterogeneous modelled tracees, served by the sharded monitor pool.

   Closed-loop benches (run_multi, the throughput bench) measure how
   fast the monitor *can* go: the next trap arrives when the previous
   one finishes, so queues never build and tails never show.  A fleet
   serving real traffic is open-loop — traps arrive when tracees make
   syscalls, at a rate the monitor does not control — and the quantity
   that matters is what a trap *experiences* end-to-end: queue wait
   plus service, against offered load.  This module builds that
   measurement:

   - service profiles are harvested from real monitored runs (the
     models' [small] parameter sets under CET+CT+CF+AI), one recorded
     event per trap decomposed into snapshot / CT / CF / AI modelled
     cycles, plus the seccomp-stage pre-filter evaluation every trap
     pays before reaching the monitor;
   - the fleet mixes the three applications round-robin with skewed
     per-tracee trap rates (smooth weighted round-robin over 16:8:5:
     4:3:2:2:2 weights), so shards are genuinely unequal;
   - arrivals are deterministic on the modelled clock: arrival [i]
     lands at [i * cps/rate] cycles, independent of service rate —
     offered load is a knob, not an outcome;
   - the sharded run drives real worker domains through the real
     bounded trap queues (arrival stamps via [Trap_queue.push_at]),
     but all latency math runs on per-shard *virtual clocks* in
     modelled cycles, so the measured waits are deterministic and a
     serial reference simulation must agree exactly: the per-domain
     shard registries ([Metrics.Shards]) merged at join are required
     to [Metrics.equal] the serial registry (asserted per sweep point
     and by the qcheck laws).

   The sweep fixes the arrival *schedule* (rate only scales spacing),
   so total busy cycles are load-independent and the saturation point
   is computable: [capacity] is the rate at which the *mean* shard
   utilisation reaches 1 — the ideal aggregate capacity a perfectly
   balanced pool could reach.  A static fleet hits its bottleneck
   shard's limit well below that (the [capacity_bottleneck] rate);
   the scheduler ablation measures how much of the gap least-loaded
   placement and work stealing recover.  Points past a policy's own
   saturation let queues grow without bound — the p99/p99.9 blow-up
   the knee detector looks for.

   Placement under a non-static policy runs through the pool's
   deterministic virtual-clock [Pool.Plan], fed in arrival order with
   the same arrivals and service costs on the sharded and serial
   paths, so the merged shard registries still [Metrics.equal] the
   serial reference exactly: migration needs no state handoff here —
   each trap's observation is a pure function of its arrival, its
   profile entry and the destination shard's clock. *)

module Pool = Bastion_mt.Monitor_pool
module Queue_ = Bastion_mt.Trap_queue

(* ------------------------------------------------------------------ *)
(* Service profiles                                                    *)

(** One trap's service decomposition, modelled cycles per span. *)
type trap_profile = {
  tp_prefilter : int;  (** seccomp-stage flow-automaton evaluation *)
  tp_snapshot : int;   (** state fetch: trap dur minus the phase spans *)
  tp_ct : int;
  tp_cf : int;
  tp_ai : int;
}

let service tp = tp.tp_prefilter + tp.tp_snapshot + tp.tp_ct + tp.tp_cf + tp.tp_ai

(** The fleet's application mix: the three models at their [small]
    scale (the golden-corpus parameter sets). *)
let small_apps () =
  [
    ("nginx", Drivers.nginx ~params:Nginx_model.small ());
    ("sqlite", Drivers.sqlite ~params:Sqlite_model.small ());
    ("vsftpd", Drivers.vsftpd ~params:Vsftpd_model.small ());
  ]

(** Harvest an app's per-trap service profile from one recorded run
    under the full defense: each event's duration decomposed into its
    phase spans (cached phases charged 0, like the monitor), the
    remainder attributed to the snapshot fetch, plus the constant
    pre-filter evaluation every trap pays at the seccomp stage. *)
let harvest_profile (app : Drivers.app) : trap_profile array =
  let recorder = Obs.Recorder.create ~tracing:true () in
  ignore (Drivers.run ~recorder app Drivers.Bastion_full);
  let prefilter = Machine.Cost.default.Machine.Cost.prefilter_eval in
  let events = Obs.Recorder.trap_events recorder in
  let profiles =
    List.map
      (fun (ev : Obs.Event.t) ->
        let phase p =
          List.fold_left
            (fun acc (sp : Obs.Event.span) ->
              if sp.sp_phase = p then acc + sp.sp_dur else acc)
            0 ev.ev_spans
        in
        let ct = phase Obs.Event.Ct in
        let cf = phase Obs.Event.Cf in
        let ai = phase Obs.Event.Ai in
        {
          tp_prefilter = prefilter;
          tp_snapshot = max 0 (ev.ev_dur - ct - cf - ai);
          tp_ct = ct;
          tp_cf = cf;
          tp_ai = ai;
        })
      events
  in
  match profiles with
  | [] -> invalid_arg "Fleet.harvest_profile: run recorded no traps"
  | ps -> Array.of_list ps

(* ------------------------------------------------------------------ *)
(* The fleet                                                           *)

type tracee_spec = {
  ts_id : int;
  ts_app : string;
  ts_weight : int;          (** relative trap rate (SWRR weight) *)
  ts_profile : trap_profile array;
  ts_offset : int;          (** starting cursor into the profile *)
}

type t = { f_tracees : tracee_spec array; f_shards : int }

(* Skewed trap rates: tracee k mod 8 = 0 fires 16/2 = 8x as often as
   the quietest — heavy hitters land on every shard, but unevenly. *)
let weight_of k = max 1 (16 / (1 + (k mod 8)))

(** Assemble a fleet: [tracees] heterogeneous tracees cycling through
    the application mix, each with a skewed weight and its own phase
    offset into its app's service profile. *)
let build ~tracees ~shards =
  if tracees < 1 then invalid_arg "Fleet.build: tracees must be >= 1";
  if shards < 1 then invalid_arg "Fleet.build: shards must be >= 1";
  let apps = small_apps () in
  let profiles =
    List.map (fun (name, app) -> (name, harvest_profile app)) apps
  in
  let f_tracees =
    Array.init tracees (fun k ->
        let name, profile = List.nth profiles (k mod List.length profiles) in
        {
          ts_id = k;
          ts_app = name;
          ts_weight = weight_of k;
          ts_profile = profile;
          ts_offset = k * 13 mod Array.length profile;
        })
  in
  { f_tracees; f_shards = shards }

(* ------------------------------------------------------------------ *)
(* The arrival schedule                                                *)

(* Smooth weighted round-robin: deterministic, and spreads each
   tracee's arrivals evenly through the stream (no bursts the weights
   don't call for).  The schedule — which tracee fires trap [i], and
   with which service profile entry — depends only on the fleet, never
   on the offered rate: rate scales arrival *spacing* alone. *)
let schedule (t : t) ~arrivals =
  let n = Array.length t.f_tracees in
  let current = Array.make n 0 in
  let total = Array.fold_left (fun acc ts -> acc + ts.ts_weight) 0 t.f_tracees in
  let fired = Array.make n 0 in
  Array.init arrivals (fun _ ->
      Array.iteri (fun k ts -> current.(k) <- current.(k) + ts.ts_weight) t.f_tracees;
      let best = ref 0 in
      for k = 1 to n - 1 do
        if current.(k) > current.(!best) then best := k
      done;
      current.(!best) <- current.(!best) - total;
      let ts = t.f_tracees.(!best) in
      let idx = (ts.ts_offset + fired.(!best)) mod Array.length ts.ts_profile in
      fired.(!best) <- fired.(!best) + 1;
      (ts.ts_id, ts.ts_profile.(idx)))

(** Per-shard busy cycles of a schedule: load-independent, so the
    saturation rate is computable before any simulation. *)
let busy_cycles (t : t) sched =
  let busy = Array.make t.f_shards 0 in
  Array.iter
    (fun (tracee, tp) ->
      let s = Pool.shard_of_tracee ~shards:t.f_shards tracee in
      busy.(s) <- busy.(s) + service tp)
    sched;
  busy

(** The ideal aggregate capacity: the offered rate (traps/second on
    the modelled clock) at which the *mean* shard utilisation reaches
    1.0 — what a perfectly balanced pool could sustain.  Independent of
    placement (total service is), so every scheduler arm of an
    ablation is measured against the same yardstick. *)
let capacity (t : t) ~arrivals =
  let sched = schedule t ~arrivals in
  let total_busy =
    max 1 (Array.fold_left (fun acc (_, tp) -> acc + service tp) 0 sched)
  in
  float_of_int arrivals *. Drivers_config.cycles_per_second
  *. float_of_int t.f_shards /. float_of_int total_busy

(** The static fleet's analytic saturation point: the rate at which
    the busiest statically-pinned shard's utilisation reaches 1.0.
    Always <= {!capacity}; the ratio is the price of imbalance. *)
let capacity_bottleneck (t : t) ~arrivals =
  let sched = schedule t ~arrivals in
  let max_busy = Array.fold_left max 1 (busy_cycles t sched) in
  float_of_int arrivals *. Drivers_config.cycles_per_second /. float_of_int max_busy

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)

(* One trap through one shard's virtual clock; every observation is an
   integer in modelled cycles, so the sharded and serial paths cannot
   diverge by rounding. *)
let observe_trap reg ~shard ~tracee ~at ~clock tp =
  let svc = service tp in
  let start = max at clock in
  let wait = start - at in
  let finish = start + svc in
  let e2e = finish - at in
  let h name = Obs.Metrics.histogram reg name in
  let c name = Obs.Metrics.counter reg name in
  Obs.Metrics.observe (h "fleet.queue_wait") wait;
  Obs.Metrics.observe (h "fleet.service") svc;
  Obs.Metrics.observe (h "fleet.e2e") e2e;
  Obs.Metrics.observe (h "fleet.phase.prefilter") tp.tp_prefilter;
  Obs.Metrics.observe (h "fleet.phase.snapshot") tp.tp_snapshot;
  Obs.Metrics.observe (h "fleet.phase.ct") tp.tp_ct;
  Obs.Metrics.observe (h "fleet.phase.cf") tp.tp_cf;
  Obs.Metrics.observe (h "fleet.phase.ai") tp.tp_ai;
  Obs.Metrics.observe (h (Printf.sprintf "fleet.shard%d.queue_wait" shard)) wait;
  Obs.Metrics.observe (h (Printf.sprintf "fleet.shard%d.e2e" shard)) e2e;
  Obs.Metrics.observe (h (Printf.sprintf "fleet.tracee%d.e2e" tracee)) e2e;
  Obs.Metrics.incr (c "fleet.traps");
  Obs.Metrics.incr (c (Printf.sprintf "fleet.shard%d.traps" shard));
  Obs.Metrics.add (c (Printf.sprintf "fleet.shard%d.busy_cycles" shard)) svc;
  finish

(* Arrival times: trap [i] lands at [i * cps/rate] cycles.  The float
   product is exact enough (< 2^53) and identical on both paths. *)
let arrival_time ~spacing i = int_of_float (float_of_int i *. spacing)

(* Route a whole schedule through one deterministic plan in arrival
   order: [dests.(i)] is trap [i]'s shard under the policy.  Both the
   sharded feeder and the serial reference call this with identical
   inputs, so they place every trap identically. *)
let plan_schedule ~policy (t : t) sched ~spacing =
  let plan = Pool.Plan.create ~policy ~shards:t.f_shards () in
  let dests =
    Array.mapi
      (fun i (tracee, tp) ->
        (Pool.Plan.route plan ~tracee ~at:(arrival_time ~spacing i)
           ~service:(service tp))
          .Pool.Plan.d_shard)
      sched
  in
  (plan, dests)

(** The serial reference: the same per-shard virtual-clock math run
    inline over one registry, in arrival order, with placement from an
    identical plan. *)
let simulate_serial ?(policy = Pool.Static) (t : t) sched ~spacing :
    Obs.Metrics.t =
  let reg = Obs.Metrics.create () in
  let clocks = Array.make t.f_shards 0 in
  let _, dests = plan_schedule ~policy t sched ~spacing in
  Array.iteri
    (fun i (tracee, tp) ->
      let shard = dests.(i) in
      let at = arrival_time ~spacing i in
      clocks.(shard) <-
        observe_trap reg ~shard ~tracee ~at ~clock:clocks.(shard) tp)
    sched;
  reg

type run_result = {
  rr_policy : Pool.policy;    (** placement policy of this run *)
  rr_rate : float;            (** offered traps/second *)
  rr_horizon : int;           (** cycles spanned by the arrival process *)
  rr_merged : Obs.Metrics.t;  (** shard registries, merged at join *)
  rr_matches_serial : bool;   (** merged = serial reference, exactly *)
  rr_shard_util : float array;   (** busy / horizon per shard, as placed *)
  rr_steals : int;            (** plan-level steals ([Steal] only) *)
  rr_migrations : int;        (** plan-level claim moves *)
  rr_stats : Obs.Timeseries.row list;  (** when sampling was on *)
}

(** Drive the schedule through the real sharded pool at [rate] traps
    per second under [policy] (default static).  Workers record into
    their domain's registry ([Metrics.Shards]); [stats_interval]
    (cycles) additionally samples a per-shard time-series row at every
    virtual-clock boundary. *)
let run_at ?stats_interval ?(policy = Pool.Static) (t : t) ~arrivals ~rate :
    run_result =
  if rate <= 0.0 then invalid_arg "Fleet.run_at: rate must be positive";
  let sched = schedule t ~arrivals in
  let spacing = Drivers_config.cycles_per_second /. rate in
  let horizon = max 1 (arrival_time ~spacing (arrivals - 1)) in
  let shards_reg = Obs.Metrics.Shards.create () in
  let config = Pool.config ~policy ~shards:t.f_shards () in
  let plan, dests = plan_schedule ~policy t sched ~spacing in
  (* Items carry their arrival index so stamping and routing are pure
     lookups, not feeder-side counters. *)
  let items =
    Array.to_seq (Array.mapi (fun i (tracee, tp) -> (tracee, (i, tp))) sched)
  in
  (* Stamp arrivals with the open-loop clock, not the service clock:
     item [i]'s stamp is its scheduled arrival time. *)
  let arrival (_, (i, _)) = arrival_time ~spacing i in
  let route (_, (i, _)) = dests.(i) in
  let worker ~shard queue =
    let reg = Obs.Metrics.Shards.my shards_reg in
    let stats = Obs.Timeseries.create () in
    let clock = ref 0 in
    let next_sample = ref (match stats_interval with Some iv -> iv | None -> max_int) in
    let sample upto =
      match stats_interval with
      | None -> ()
      | Some iv ->
        while !next_sample <= upto do
          let s name =
            Obs.Metrics.summarize (Obs.Metrics.histogram reg name)
          in
          let wait = s (Printf.sprintf "fleet.shard%d.queue_wait" shard) in
          let e2e = s (Printf.sprintf "fleet.shard%d.e2e" shard) in
          let traps =
            Obs.Metrics.value
              (Obs.Metrics.counter reg (Printf.sprintf "fleet.shard%d.traps" shard))
          in
          let busy =
            Obs.Metrics.value
              (Obs.Metrics.counter reg
                 (Printf.sprintf "fleet.shard%d.busy_cycles" shard))
          in
          Obs.Timeseries.push stats ~at:!next_sample ~shard
            [
              ("traps", float_of_int traps);
              ("busy_cycles", float_of_int busy);
              ("queue_wait_p50", wait.Obs.Metrics.s_p50);
              ("queue_wait_p99", wait.Obs.Metrics.s_p99);
              ("queue_wait_p999", wait.Obs.Metrics.s_p999);
              ("e2e_p99", e2e.Obs.Metrics.s_p99);
            ];
          next_sample := !next_sample + iv
        done
    in
    let rec drain () =
      match Queue_.pop_batch_stamped queue ~max:config.Pool.batch with
      | [] -> sample (max !clock horizon)
      | batch ->
        List.iter
          (fun (at, (tracee, (_, tp))) ->
            clock := observe_trap reg ~shard ~tracee ~at ~clock:!clock tp;
            sample !clock)
          batch;
        drain ()
    in
    drain ();
    stats
  in
  let stats_accs, _queue_stats =
    Pool.with_pool ~arrival ~route config ~items ~worker
  in
  let merged = Obs.Metrics.Shards.merged shards_reg in
  let serial = simulate_serial ~policy t sched ~spacing in
  let busy = Pool.Plan.busy_per_shard plan in
  {
    rr_policy = policy;
    rr_rate = rate;
    rr_horizon = horizon;
    rr_merged = merged;
    rr_matches_serial = Obs.Metrics.equal merged serial;
    rr_shard_util =
      Array.map (fun b -> float_of_int b /. float_of_int horizon) busy;
    rr_steals = Pool.Plan.steals plan;
    rr_migrations = Pool.Plan.migrations plan;
    rr_stats = Obs.Timeseries.merge (Array.to_list stats_accs);
  }

(* ------------------------------------------------------------------ *)
(* The load sweep and its saturation knee                              *)

type point = {
  pt_fraction : float;  (** offered load as a fraction of capacity *)
  pt_result : run_result;
}

type sweep = {
  sw_policy : Pool.policy;
  sw_tracees : int;
  sw_shards : int;
  sw_arrivals : int;
  sw_capacity : float;  (** traps/second at *mean* shard util 1.0 *)
  sw_capacity_bottleneck : float;
      (** traps/second at static bottleneck-shard util 1.0 *)
  sw_points : point list;
  sw_knee : int option;  (** index of the first saturated point *)
  sw_knee_reason : string option;
}

(** A scheduler ablation: one fleet and one arrival schedule swept
    under several placement policies against the same capacity
    yardstick. *)
type ablation = {
  ab_tracees : int;
  ab_shards : int;
  ab_arrivals : int;
  ab_capacity : float;
  ab_capacity_bottleneck : float;
  ab_sweeps : sweep list;
}

(** The saturation knee over per-point (max shard utilisation, p99
    queue wait, mean service time): the first point whose bottleneck
    shard is saturated (util >= 1), or — for fleets that degrade
    before the analytic limit — the first whose p99 queue wait blows
    past 8x the lightest-load baseline.  The baseline is floored at
    one mean service time: a queue-wait tail shorter than a handful of
    traps' service is normal bursting, not a knee, even when the
    lightest load waited 0. *)
let detect_knee (points : (float * float * float) list) : (int * string) option =
  match points with
  | [] -> None
  | (_, base_p99, base_service) :: _ ->
    let tail_limit = 8.0 *. Float.max base_p99 base_service in
    let rec go i = function
      | [] -> None
      | (util, p99, _) :: rest ->
        if util >= 1.0 then
          Some (i, "bottleneck shard utilisation reached 1.0")
        else if p99 > tail_limit then
          Some (i, "p99 queue wait exceeded 8x the lightest-load baseline")
        else go (i + 1) rest
    in
    go 0 points

(* Load fractions for an n-point sweep: evenly spaced from a fifth of
   capacity to 15% past it, so the knee is always inside the sweep. *)
let fractions ~points =
  if points < 2 then invalid_arg "Fleet.sweep: points must be >= 2";
  List.init points (fun i ->
      0.2 +. (0.95 *. float_of_int i /. float_of_int (points - 1)))

let wait_p99 (r : run_result) =
  (Obs.Metrics.summarize (Obs.Metrics.histogram r.rr_merged "fleet.queue_wait"))
    .Obs.Metrics.s_p99

let service_mean (r : run_result) =
  (Obs.Metrics.summarize (Obs.Metrics.histogram r.rr_merged "fleet.service"))
    .Obs.Metrics.s_mean

let max_util (r : run_result) = Array.fold_left Float.max 0.0 r.rr_shard_util

(** Per-point imbalance: hottest shard's utilisation over the mean.
    1.0 is perfectly level; [shards] is everything on one shard. *)
let util_spread (r : run_result) =
  let n = Array.length r.rr_shard_util in
  if n = 0 then 0.0
  else begin
    let total = Array.fold_left ( +. ) 0.0 r.rr_shard_util in
    if total <= 0.0 then 0.0 else max_util r /. (total /. float_of_int n)
  end

let sweep_fleet ?stats_interval ~policy (t : t) ~arrivals ~points : sweep =
  let cap = capacity t ~arrivals in
  let pts =
    List.map
      (fun f ->
        { pt_fraction = f;
          pt_result =
            run_at ?stats_interval ~policy t ~arrivals ~rate:(f *. cap) })
      (fractions ~points)
  in
  let knee =
    detect_knee
      (List.map
         (fun p ->
           (max_util p.pt_result, wait_p99 p.pt_result, service_mean p.pt_result))
         pts)
  in
  {
    sw_policy = policy;
    sw_tracees = Array.length t.f_tracees;
    sw_shards = t.f_shards;
    sw_arrivals = arrivals;
    sw_capacity = cap;
    sw_capacity_bottleneck = capacity_bottleneck t ~arrivals;
    sw_points = pts;
    sw_knee = Option.map fst knee;
    sw_knee_reason = Option.map snd knee;
  }

(** Sweep offered load across [points] fractions of {!capacity} under
    one placement [policy] (default static). *)
let sweep ?stats_interval ?(policy = Pool.Static) ~tracees ~shards ~arrivals
    ~points () : sweep =
  let t = build ~tracees ~shards in
  sweep_fleet ?stats_interval ~policy t ~arrivals ~points

(** The scheduler ablation: build the fleet once, sweep every policy
    in [policies] (default all three) over the identical schedule and
    capacity yardstick. *)
let ablation ?stats_interval ?(policies = Pool.all_policies) ~tracees ~shards
    ~arrivals ~points () : ablation =
  let t = build ~tracees ~shards in
  {
    ab_tracees = tracees;
    ab_shards = shards;
    ab_arrivals = arrivals;
    ab_capacity = capacity t ~arrivals;
    ab_capacity_bottleneck = capacity_bottleneck t ~arrivals;
    ab_sweeps =
      List.map
        (fun policy -> sweep_fleet ?stats_interval ~policy t ~arrivals ~points)
        policies;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let summary_json (s : Obs.Metrics.summary) : Report.Json.t =
  let open Report.Json in
  Obj
    [
      ("count", Num (float_of_int s.Obs.Metrics.s_count));
      ("p50", Num s.Obs.Metrics.s_p50);
      ("p99", Num s.Obs.Metrics.s_p99);
      ("p999", Num s.Obs.Metrics.s_p999);
      ("max", Num (float_of_int s.Obs.Metrics.s_max));
      ("mean", Num s.Obs.Metrics.s_mean);
    ]

let point_json (t_shards : int) (p : point) : Report.Json.t =
  let open Report.Json in
  let r = p.pt_result in
  let s name = Obs.Metrics.summarize (Obs.Metrics.histogram r.rr_merged name) in
  Obj
    [
      ("offered_traps_per_sec", Num r.rr_rate);
      ("load_fraction", Num p.pt_fraction);
      ("horizon_cycles", Num (float_of_int r.rr_horizon));
      ("util_max", Num (max_util r));
      ("util_spread", Num (util_spread r));
      ("steals", Num (float_of_int r.rr_steals));
      ("migrations", Num (float_of_int r.rr_migrations));
      ("matches_serial", Bool r.rr_matches_serial);
      ("queue_wait", summary_json (s "fleet.queue_wait"));
      ("e2e", summary_json (s "fleet.e2e"));
      ("service", summary_json (s "fleet.service"));
      ( "shards",
        List
          (List.init t_shards (fun shard ->
               Obj
                 [
                   ("shard", Num (float_of_int shard));
                   ("util", Num r.rr_shard_util.(shard));
                   ( "queue_wait",
                     summary_json
                       (s (Printf.sprintf "fleet.shard%d.queue_wait" shard)) );
                 ])) );
    ]

let knee_json (s : sweep) : Report.Json.t =
  let open Report.Json in
  match (s.sw_knee, s.sw_knee_reason) with
  | Some i, Some reason ->
    let p = List.nth s.sw_points i in
    Obj
      [
        ("index", Num (float_of_int i));
        ("offered_traps_per_sec", Num p.pt_result.rr_rate);
        ("load_fraction", Num p.pt_fraction);
        ("reason", Str reason);
      ]
  | _ -> Null

let policy_json (s : sweep) : Report.Json.t =
  let open Report.Json in
  Obj
    [
      ("policy", Str (Pool.policy_name s.sw_policy));
      ("results", List (List.map (point_json s.sw_shards) s.sw_points));
      ("knee", knee_json s);
    ]

(** The BENCH_fleet.json document (schema v2): offered load vs latency
    tails per scheduler policy, each arm with its own knee, against one
    ideal-aggregate capacity yardstick.  Everything in it derives from
    the modelled clock, so regeneration is byte-identical. *)
let ablation_json (a : ablation) : Report.Json.t =
  let open Report.Json in
  Obj
    [
      ("schema", Str "bastion-fleet/2");
      ( "config",
        Obj
          [
            ("tracees", Num (float_of_int a.ab_tracees));
            ("shards", Num (float_of_int a.ab_shards));
            ("arrivals", Num (float_of_int a.ab_arrivals));
            ( "apps",
              List (List.map (fun (name, _) -> Str name) (small_apps ())) );
          ] );
      ("capacity_traps_per_sec", Num a.ab_capacity);
      ("capacity_bottleneck_traps_per_sec", Num a.ab_capacity_bottleneck);
      ("policies", List (List.map policy_json a.ab_sweeps));
    ]

(** A single sweep as a one-arm v2 document ([bastion fleet --json]
    with one scheduler selected). *)
let sweep_json (s : sweep) : Report.Json.t =
  ablation_json
    {
      ab_tracees = s.sw_tracees;
      ab_shards = s.sw_shards;
      ab_arrivals = s.sw_arrivals;
      ab_capacity = s.sw_capacity;
      ab_capacity_bottleneck = s.sw_capacity_bottleneck;
      ab_sweeps = [ s ];
    }

(** Render a sweep for the terminal ([bastion fleet]). *)
let render_sweep (s : sweep) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "fleet: %d tracees (%s mix), %d shards, %d arrivals/point, %s scheduler\n\
        capacity (mean shard util = 1): %.0f traps/sec (static bottleneck: %.0f)\n\n"
       s.sw_tracees
       (String.concat "/" (List.map fst (small_apps ())))
       s.sw_shards s.sw_arrivals
       (Pool.policy_name s.sw_policy)
       s.sw_capacity s.sw_capacity_bottleneck);
  Buffer.add_string buf
    (Report.Table.render
       ~align:Report.Table.[ R; R; R; R; R; R; R; R; R; R; R ]
       ~header:
         [ "load"; "traps/sec"; "util"; "spread"; "steals";
           "wait p50"; "wait p99"; "wait p99.9";
           "e2e p50"; "e2e p99"; "e2e p99.9" ]
       (List.map
          (fun p ->
            let r = p.pt_result in
            let s name =
              Obs.Metrics.summarize (Obs.Metrics.histogram r.rr_merged name)
            in
            let w = s "fleet.queue_wait" and e = s "fleet.e2e" in
            [
              Printf.sprintf "%.2f" p.pt_fraction;
              Printf.sprintf "%.0f" r.rr_rate;
              Printf.sprintf "%.2f" (max_util r);
              Printf.sprintf "%.2f" (util_spread r);
              string_of_int r.rr_steals;
              Printf.sprintf "%.0f" w.Obs.Metrics.s_p50;
              Printf.sprintf "%.0f" w.Obs.Metrics.s_p99;
              Printf.sprintf "%.0f" w.Obs.Metrics.s_p999;
              Printf.sprintf "%.0f" e.Obs.Metrics.s_p50;
              Printf.sprintf "%.0f" e.Obs.Metrics.s_p99;
              Printf.sprintf "%.0f" e.Obs.Metrics.s_p999;
            ])
          s.sw_points));
  Buffer.add_string buf "\n\n";
  (match (s.sw_knee, s.sw_knee_reason) with
  | Some i, Some reason ->
    let p = List.nth s.sw_points i in
    Buffer.add_string buf
      (Printf.sprintf "saturation knee: point %d (%.2fx capacity, %.0f traps/sec) — %s\n"
         i p.pt_fraction p.pt_result.rr_rate reason)
  | _ -> Buffer.add_string buf "saturation knee: not reached in this sweep\n");
  let bad =
    List.filter (fun p -> not p.pt_result.rr_matches_serial) s.sw_points
  in
  if bad <> [] then
    Buffer.add_string buf
      (Printf.sprintf
         "WARNING: %d point(s) diverged from the serial reference\n"
         (List.length bad));
  Buffer.contents buf

(** Render an ablation: the per-policy knee comparison, then each
    arm's sweep table. *)
let render_ablation (a : ablation) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "scheduler ablation: %d tracees, %d shards, %d arrivals/point\n\
        capacity (mean shard util = 1): %.0f traps/sec (static bottleneck: %.0f)\n\n"
       a.ab_tracees a.ab_shards a.ab_arrivals a.ab_capacity
       a.ab_capacity_bottleneck);
  Buffer.add_string buf
    (Report.Table.render
       ~align:Report.Table.[ L; R; R; R; R ]
       ~header:[ "policy"; "knee load"; "knee traps/sec"; "steals"; "migrations" ]
       (List.map
          (fun s ->
            let steals =
              List.fold_left (fun acc p -> acc + p.pt_result.rr_steals) 0 s.sw_points
            in
            let migrations =
              List.fold_left
                (fun acc p -> acc + p.pt_result.rr_migrations)
                0 s.sw_points
            in
            let knee_load, knee_rate =
              match s.sw_knee with
              | Some i ->
                let p = List.nth s.sw_points i in
                ( Printf.sprintf "%.2f" p.pt_fraction,
                  Printf.sprintf "%.0f" p.pt_result.rr_rate )
              | None -> ("-", "-")
            in
            [
              Pool.policy_name s.sw_policy;
              knee_load;
              knee_rate;
              string_of_int steals;
              string_of_int migrations;
            ])
          a.ab_sweeps));
  Buffer.add_string buf "\n\n";
  List.iter
    (fun s ->
      Buffer.add_string buf (render_sweep s);
      Buffer.add_char buf '\n')
    a.ab_sweeps;
  Buffer.contents buf
