(* The NGINX application model.

   A SIL rendition of the NGINX structure the paper analyses and
   attacks:
   - an init phase performing almost all sensitive syscalls (pools and
     shared memory via mmap, W^X transitions via mprotect, listener
     setup, worker channels, privilege drop, worker spawning) with the
     invocation counts of Table 4;
   - a keep-alive worker loop: accept4 per connection, then per request
     read/parse/open/read/write/log/close plus the two indirect-call
     sites of Listings 1 & 2 (ctx->output_filter and
     v[index].get_handler);
   - the rarely-used runtime-upgrade path ngx_execute_proc() whose
     execve(ctx->path, ctx->argv, ctx->envp) is the paper's running
     example. *)

module B = Sil.Builder
open Sil.Operand
open Appkit

type params = {
  connections : int;        (** accept4 invocations (5,665 in the paper run) *)
  requests_per_conn : int;  (** keep-alive requests per connection *)
  page_words : int;         (** served page size (6,745 B ~ 843 words) *)
  workers : int;
  init_mmap : int;          (** Table 4: 534 *)
  init_mprotect : int;      (** Table 4: 334 *)
  filler : bool;            (** pad static structure to Table 5 scale *)
}

let default =
  {
    connections = 40;
    requests_per_conn = 180;
    page_words = 843;
    workers = 32;
    init_mmap = 534;
    init_mprotect = 334;
    filler = true;
  }

(* Golden-corpus / fleet scale: the same program structure (filler and
   all, so the metadata fingerprint stays representative) with the
   dynamic parameters shrunk to a few hundred traps per run. *)
let small =
  { default with
    connections = 6; requests_per_conn = 4; workers = 4;
    init_mmap = 12; init_mprotect = 8 }

(** Parameters matching the paper's benchmark run exactly (Table 4). *)
let paper_scale = { default with connections = 5664; requests_per_conn = 4 }

let page_path = "/var/www/index.html"
let binary_path = "/usr/local/nginx/sbin/nginx"
let log_path = "/var/log/nginx/access.log"
let listen_port = 80

(* Table 5 targets for NGINX. *)
let table5_total_callsites = 7017
let table5_indirect_callsites = 325

let construct ~filler_counts (p : params) : Sil.Prog.t =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  (* Structs from the two code listings. *)
  B.struct_ pb "ngx_exec_ctx_t" [ ("path", ptr); ("argv", ptr); ("envp", ptr) ];
  B.struct_ pb "ngx_output_chain_ctx_t" [ ("output_filter", ptr); ("filter_ctx", i64) ];
  B.struct_ pb "ngx_http_var_t" [ ("get_handler", ptr); ("data", i64); ("flags", i64) ];
  B.struct_ pb "ngx_request_t" [ ("fd", i64); ("uri", ptr); ("variables", Sil.Types.Array (i64, 4)) ];
  (* Globals. *)
  B.global pb "g_exec_ctx" (Sil.Types.Struct "ngx_exec_ctx_t") Sil.Prog.Zero;
  B.global pb "g_argv" (Sil.Types.Array (i64, 4)) Sil.Prog.Zero;
  B.global pb "g_envp" (Sil.Types.Array (i64, 2)) Sil.Prog.Zero;
  B.global pb "g_upgrade" i64 Sil.Prog.Zero;
  B.global pb "g_vars" (Sil.Types.Array (Sil.Types.Struct "ngx_http_var_t", 8)) Sil.Prog.Zero;
  B.global pb "g_chain" (Sil.Types.Struct "ngx_output_chain_ctx_t") Sil.Prog.Zero;
  B.global pb "g_listen_fd" i64 Sil.Prog.Zero;
  B.global pb "g_log_fd" i64 Sil.Prog.Zero;
  B.global pb "g_cur_fd" i64 Sil.Prog.Zero;
  B.global pb "g_scratch" (Sil.Types.Array (i64, 24)) Sil.Prog.Zero;
  (* ngx_spawn_process callback slot: ngx_execute_proc is passed as an
     ngx_spawn_proc_pt function pointer in real NGINX, so its address is
     legitimately taken. *)
  B.global pb "g_spawn_proc" ptr (Sil.Prog.Fptr "ngx_execute_proc");

  (* --- Variable handlers (indirect-call targets, Listing 2) --------- *)
  List.iter
    (fun name ->
      let fb = B.func pb name ~params:[ ("r", ptr); ("v", ptr); ("data", i64) ] in
      let x = B.local fb "x" i64 in
      B.binop fb x Sil.Instr.Add (Var (B.param fb 2)) (const 1);
      B.ret fb (Some (Var x));
      B.seal fb)
    [ "ngx_http_variable_host"; "ngx_http_variable_uri"; "ngx_http_variable_status" ];

  (* --- ngx_http_write_filter: the benign output_filter target ------- *)
  let fb = B.func pb "ngx_http_write_filter" ~params:[ ("fc", i64); ("in", i64) ] in
  let fd = B.local fb "fd" i64 in
  B.load fb fd (Sil.Place.Lglobal "g_cur_fd");
  B.call fb "write" [ Var fd; Null; const 2 ];
  B.ret fb (Some (const 0));
  B.seal fb;

  (* --- ngx_output_chain (Listing 1, lines 10-19) -------------------- *)
  let fb = B.func pb "ngx_output_chain" ~params:[ ("ctx", ptr); ("in", i64) ] in
  let filter = B.local fb "filter" ptr in
  let fc = B.local fb "fc" i64 in
  B.load fb filter (Sil.Place.Lfield (Var (B.param fb 0), "ngx_output_chain_ctx_t", "output_filter"));
  B.load fb fc (Sil.Place.Lfield (Var (B.param fb 0), "ngx_output_chain_ctx_t", "filter_ctx"));
  let r = B.local fb "r" i64 in
  B.call_indirect fb ~dst:r (Var filter) [ Var fc; Var (B.param fb 1) ];
  (* NB: `in` is a chain pointer in writable memory (Listing 1 line 16):
     this is the argument-corruptible indirect callsite Control Jujutsu
     leverages. *)
  B.ret fb (Some (Var r));
  B.seal fb;

  (* --- ngx_http_get_indexed_variable (Listing 2) -------------------- *)
  let fb =
    B.func pb "ngx_http_get_indexed_variable" ~params:[ ("r", ptr); ("index", i64) ]
  in
  let vbase = B.local fb "vbase" ptr in
  let handler = B.local fb "handler" ptr in
  let data = B.local fb "data" i64 in
  let vptr = B.local fb "vptr" ptr in
  let rv = B.local fb "rv" i64 in
  B.addr_of fb vbase (Sil.Place.Lglobal "g_vars");
  B.addr_of fb vptr
    (Sil.Place.Lindex (Var vbase, Var (B.param fb 1), Sil.Types.Struct "ngx_http_var_t"));
  B.load fb handler (Sil.Place.Lfield (Var vptr, "ngx_http_var_t", "get_handler"));
  B.load fb data (Sil.Place.Lfield (Var vptr, "ngx_http_var_t", "data"));
  B.call_indirect fb ~dst:rv (Var handler) [ Var (B.param fb 0); Var vptr; Var data ];
  B.ret fb (Some (Var rv));
  B.seal fb;

  (* --- ngx_execute_proc (Listing 1, lines 1-9) ---------------------- *)
  let fb = B.func pb "ngx_execute_proc" ~params:[ ("cycle", i64); ("data", ptr) ] in
  let path = B.local fb "path" ptr in
  let argv = B.local fb "argv" ptr in
  let envp = B.local fb "envp" ptr in
  B.load fb path (Sil.Place.Lfield (Var (B.param fb 1), "ngx_exec_ctx_t", "path"));
  B.load fb argv (Sil.Place.Lfield (Var (B.param fb 1), "ngx_exec_ctx_t", "argv"));
  B.load fb envp (Sil.Place.Lfield (Var (B.param fb 1), "ngx_exec_ctx_t", "envp"));
  B.call fb "execve" [ Var path; Var argv; Var envp ];
  B.call fb "exit" [ const 1 ];
  B.ret fb None;
  B.seal fb;

  (* --- Init-phase helpers ------------------------------------------- *)
  (* ngx_shm_alloc(size): the Figure 2 pattern — the mmap size argument
     arrives through a parameter, exercising the inter-procedural
     argument chain. *)
  let fb = B.func pb "ngx_shm_alloc" ~params:[ ("size", i64) ] in
  let prots = B.local fb "prots" i64 in
  let addr = B.local fb "addr" ptr in
  B.binop fb prots Sil.Instr.Or (const 1) (const 2);
  B.call fb ~dst:addr "mmap"
    [ Null; Var (B.param fb 0); Var prots; const 1; const (-1); const 0 ];
  B.ret fb (Some (Var addr));
  B.seal fb;

  (* ngx_shared_memory_add: one more level in the Figure 2 chain
     (size flows caller -> caller -> mmap). *)
  let fb = B.func pb "ngx_shared_memory_add" ~params:[ ("size", i64) ] in
  let addr = B.local fb "addr" ptr in
  B.call fb ~dst:addr "ngx_shm_alloc" [ Var (B.param fb 0) ];
  B.ret fb (Some (Var addr));
  B.seal fb;

  let shm_allocs = min 64 (max 1 (p.init_mmap / 8)) in
  let fb = B.func pb "ngx_create_pools" ~params:[ ("n", i64) ] in
  let size = B.local fb "size" i64 in
  counted_loop fb ~tag:"pool" ~count:(p.init_mmap - shm_allocs) (fun fb ->
      B.call fb "mmap" [ Null; const 4096; const 3; const 2; const (-1); const 0 ]);
  B.binop fb size Sil.Instr.Mul (Var (B.param fb 0)) (const 512);
  counted_loop fb ~tag:"shm" ~count:shm_allocs (fun fb ->
      B.call fb "ngx_shared_memory_add" [ Var size ]);
  B.ret fb None;
  B.seal fb;

  (* Cold paths: rarely-used NGINX functionality whose sensitive
     callsites exist in the binary but never run during benchmarking
     (slab-pool growth, W^X debugging, realloc's mremap, thread spawn,
     privilege restore, log-rotation chmod). *)
  let fb = B.func pb "ngx_cold_paths" ~params:[] in
  let region = B.local fb "region" ptr in
  B.call fb ~dst:region "mmap" [ Null; const 65536; const 3; const 2; const (-1); const 0 ];
  B.call fb ~dst:region "mmap" [ Null; const 16384; const 1; const 2; const (-1); const 0 ];
  B.call fb "mprotect" [ Var region; const 65536; const 1 ];
  B.call fb "mprotect" [ Var region; const 16384; const 3 ];
  B.call fb "mremap" [ Var region; const 65536; const 131072; const 1 ];
  B.call fb "clone" [ const 3 ];
  B.call fb "setreuid" [ const (-1); const 0 ];
  B.call fb "chmod" [ Cstr log_path; const 0o644 ];
  B.ret fb None;
  B.seal fb;

  let rx_mprotects = min 34 (max 1 (p.init_mprotect / 10)) in
  let fb = B.func pb "ngx_harden_memory" ~params:[] in
  let prot_rx = B.local fb "prot_rx" i64 in
  counted_loop fb ~tag:"ro" ~count:(p.init_mprotect - rx_mprotects) (fun fb ->
      B.call fb "mprotect" [ Null; const 4096; const 1 ]);
  B.binop fb prot_rx Sil.Instr.Or (const 1) (const 4);
  counted_loop fb ~tag:"rx" ~count:rx_mprotects (fun fb ->
      B.call fb "mprotect" [ Null; const 4096; Var prot_rx ]);
  B.ret fb None;
  B.seal fb;

  let fb = B.func pb "ngx_open_listening" ~params:[] in
  let s = B.local fb "s" i64 in
  B.call fb ~dst:s "socket" [ const 2; const 1; const 0 ];
  B.store fb (Sil.Place.Lglobal "g_listen_fd") (Var s);
  B.call fb "bind" [ Var s; const listen_port ];
  B.call fb "listen" [ Var s; const 511 ];
  (* NGINX re-issues listen when the backlog is reconfigured. *)
  B.call fb "listen" [ Var s; const 1024 ];
  B.ret fb None;
  B.seal fb;

  let fb = B.func pb "ngx_worker_channels" ~params:[ ("n", i64) ] in
  let ch = B.local fb "ch" i64 in
  counted_loop fb ~tag:"chan" ~count:(p.workers - 1) (fun fb ->
      B.call fb ~dst:ch "socket" [ const 1; const 1; const 0 ];
      B.call fb "connect" [ Var ch; const 9000 ]);
  (* One upstream health-check connection. *)
  B.call fb "connect" [ const 0; const 8080 ];
  B.ret fb None;
  B.seal fb;

  let fb = B.func pb "ngx_spawn_workers" ~params:[ ("n", i64) ] in
  counted_loop fb ~tag:"spawn" ~count:p.workers (fun fb ->
      (* worker + cache manager + cache loader: 3 clones per slot. *)
      B.call fb "clone" [ const 0 ];
      B.call fb "clone" [ const 1 ];
      B.call fb "clone" [ const 2 ];
      B.call fb "setuid" [ const 33 ];
      B.call fb "setgid" [ const 33 ]);
  B.ret fb None;
  B.seal fb;

  (* --- ngx_init_cycle ------------------------------------------------ *)
  let fb = B.func pb "ngx_init_cycle" ~params:[] in
  let pctx = B.local fb "pctx" ptr in
  let pargv = B.local fb "pargv" ptr in
  let penvp = B.local fb "penvp" ptr in
  let lfd = B.local fb "lfd" i64 in
  (* Populate the upgrade exec context (Listing 1 state). *)
  B.addr_of fb pctx (Sil.Place.Lglobal "g_exec_ctx");
  B.addr_of fb pargv (Sil.Place.Lglobal "g_argv");
  B.addr_of fb penvp (Sil.Place.Lglobal "g_envp");
  B.store fb (Sil.Place.Lfield (Var pctx, "ngx_exec_ctx_t", "path")) (Cstr binary_path);
  B.store fb (Sil.Place.Lfield (Var pctx, "ngx_exec_ctx_t", "argv")) (Var pargv);
  B.store fb (Sil.Place.Lfield (Var pctx, "ngx_exec_ctx_t", "envp")) (Var penvp);
  B.store fb (Sil.Place.Lindex (Var pargv, const 0, i64)) (Cstr binary_path);
  B.store fb (Sil.Place.Lindex (Var pargv, const 1, i64)) (Cstr "-g");
  B.store fb (Sil.Place.Lindex (Var pargv, const 2, i64)) (Cstr "daemon off;");
  B.store fb (Sil.Place.Lindex (Var penvp, const 0, i64)) (Cstr "PATH=/usr/bin");
  (* Indexed-variable table (Listing 2 state). *)
  let vbase = B.local fb "vbase" ptr in
  let vp = B.local fb "vp" ptr in
  B.addr_of fb vbase (Sil.Place.Lglobal "g_vars");
  List.iteri
    (fun i handler ->
      B.addr_of fb vp
        (Sil.Place.Lindex (Var vbase, const i, Sil.Types.Struct "ngx_http_var_t"));
      B.store fb (Sil.Place.Lfield (Var vp, "ngx_http_var_t", "get_handler")) (Func_addr handler);
      B.store fb (Sil.Place.Lfield (Var vp, "ngx_http_var_t", "data")) (const (100 + i));
      B.store fb (Sil.Place.Lfield (Var vp, "ngx_http_var_t", "flags")) (const 0))
    [
      "ngx_http_variable_host"; "ngx_http_variable_uri"; "ngx_http_variable_status";
      "ngx_http_variable_host"; "ngx_http_variable_uri"; "ngx_http_variable_status";
      "ngx_http_variable_host"; "ngx_http_variable_uri";
    ];
  (* Output chain context. *)
  let cp = B.local fb "cp" ptr in
  B.addr_of fb cp (Sil.Place.Lglobal "g_chain");
  B.store fb
    (Sil.Place.Lfield (Var cp, "ngx_output_chain_ctx_t", "output_filter"))
    (Func_addr "ngx_http_write_filter");
  B.store fb (Sil.Place.Lfield (Var cp, "ngx_output_chain_ctx_t", "filter_ctx")) (const 0);
  (* Syscall-heavy init. *)
  B.call fb "ngx_create_pools" [ const 4 ];
  B.call fb "ngx_harden_memory" [];
  B.call fb "ngx_open_listening" [];
  B.call fb "ngx_worker_channels" [ const p.workers ];
  B.call fb "ngx_spawn_workers" [ const p.workers ];
  let log = B.local fb "log" i64 in
  B.call fb ~dst:log "open" [ Cstr log_path; const 1 ];
  B.store fb (Sil.Place.Lglobal "g_log_fd") (Var log);
  B.load fb lfd (Sil.Place.Lglobal "g_listen_fd");
  B.ret fb (Some (Var lfd));
  B.seal fb;

  (* --- Request handling ---------------------------------------------- *)
  let fb = B.func pb "ngx_http_log_request" ~params:[ ("status", i64) ] in
  let lfd = B.local fb "lfd" i64 in
  B.load fb lfd (Sil.Place.Lglobal "g_log_fd");
  B.call fb "write" [ Var lfd; Null; const 12 ];
  B.ret fb None;
  B.seal fb;

  (* The static-content handler: the file I/O of one request. *)
  let fb = B.func pb "ngx_http_static_handler" ~params:[ ("fd", i64); ("bufp", ptr) ] in
  let n = B.local fb "n" i64 in
  let ffd = B.local fb "ffd" i64 in
  B.call fb "stat" [ Cstr page_path; Var (B.param fb 1) ];
  B.call fb ~dst:ffd "open" [ Cstr page_path; const 0 ];
  B.call fb "fstat" [ Var ffd; Var (B.param fb 1) ];
  B.block fb "send_loop";
  B.call fb ~dst:n "read" [ Var ffd; Var (B.param fb 1); const 256 ];
  let more = B.local fb "more" i64 in
  B.binop fb more Sil.Instr.Gt (Var n) (const 0);
  B.branch fb (Var more) "send_body" "send_done";
  B.block fb "send_body";
  B.call fb "write" [ Var (B.param fb 0); Var (B.param fb 1); Var n ];
  B.jump fb "send_loop";
  B.block fb "send_done";
  B.call fb "close" [ Var ffd ];
  B.ret fb None;
  B.seal fb;

  let fb = B.func pb "ngx_http_handle_request" ~params:[ ("fd", i64) ] in
  let buf = B.local fb "buf" (Sil.Types.Array (i64, 8)) in
  let bufp = B.local fb "bufp" ptr in
  let req = B.local fb "req" (Sil.Types.Struct "ngx_request_t") in
  let reqp = B.local fb "reqp" ptr in
  let n = B.local fb "n" i64 in
  let chainp = B.local fb "chainp" ptr in
  B.addr_of fb bufp (Sil.Place.Lvar buf);
  B.store fb (Sil.Place.Lglobal "g_cur_fd") (Var (B.param fb 0));
  B.call fb ~dst:n "read" [ Var (B.param fb 0); Var bufp; const 64 ];
  compute_loop fb ~tag:"parse" ~iters:24;
  B.addr_of fb reqp (Sil.Place.Lvar req);
  B.store fb (Sil.Place.Lfield (Var reqp, "ngx_request_t", "fd")) (Var (B.param fb 0));
  B.call fb "ngx_http_get_indexed_variable" [ Var reqp; const 2 ];
  B.call fb "ngx_http_static_handler" [ Var (B.param fb 0); Var bufp ];
  B.addr_of fb chainp (Sil.Place.Lglobal "g_chain");
  B.call fb "ngx_output_chain" [ Var chainp; Var bufp ];
  B.call fb "ngx_http_log_request" [ const 200 ];
  B.ret fb None;
  B.seal fb;

  let fb = B.func pb "ngx_process_connection" ~params:[ ("fd", i64) ] in
  counted_loop fb ~tag:"keepalive" ~count:p.requests_per_conn (fun fb ->
      B.call fb "ngx_http_handle_request" [ Var (B.param fb 0) ]);
  B.call fb "close" [ Var (B.param fb 0) ];
  B.ret fb None;
  B.seal fb;

  let fb = B.func pb "ngx_worker_loop" ~params:[] in
  let lfd = B.local fb "lfd" i64 in
  let sa = B.local fb "sa" (Sil.Types.Array (i64, 2)) in
  let sap = B.local fb "sap" ptr in
  let cfd = B.local fb "cfd" i64 in
  B.load fb lfd (Sil.Place.Lglobal "g_listen_fd");
  B.addr_of fb sap (Sil.Place.Lvar sa);
  B.store fb (Sil.Place.Lindex (Var sap, const 0, i64)) (const 0);
  B.store fb (Sil.Place.Lindex (Var sap, const 1, i64)) (const 0);
  B.block fb "accept_loop";
  B.call fb ~dst:cfd "accept4" [ Var lfd; Var sap; const 2; const 0 ];
  let got = B.local fb "got" i64 in
  B.binop fb got Sil.Instr.Ge (Var cfd) (const 0);
  B.branch fb (Var got) "serve" "accept_done";
  B.block fb "serve";
  B.call fb "ngx_process_connection" [ Var cfd ];
  B.jump fb "accept_loop";
  B.block fb "accept_done";
  B.ret fb None;
  B.seal fb;

  (* --- ngx_master_cycle & main --------------------------------------- *)
  let fb = B.func pb "ngx_worker_process_cycle" ~params:[] in
  B.call fb "ngx_worker_loop" [];
  B.ret fb None;
  B.seal fb;

  let fb = B.func pb "ngx_master_cycle" ~params:[] in
  let upgrade = B.local fb "upgrade" i64 in
  let ctxp = B.local fb "ctxp" ptr in
  B.load fb upgrade (Sil.Place.Lglobal "g_upgrade");
  B.branch fb (Var upgrade) "do_upgrade" "serve";
  B.block fb "do_upgrade";
  (* The legitimate binary-upgrade path: rarely taken (never during
     benchmarking), but statically present — exactly the execve the
     paper's attacks try to reach illegitimately.  The same rare path
     hosts the cold sensitive callsites. *)
  B.addr_of fb ctxp (Sil.Place.Lglobal "g_exec_ctx");
  B.call fb "ngx_cold_paths" [];
  B.call fb "ngx_execute_proc" [ const 0; Var ctxp ];
  B.jump fb "serve";
  B.block fb "serve";
  B.call fb "ngx_worker_process_cycle" [];
  B.ret fb None;
  B.seal fb;

  let fb = B.func pb "main" ~params:[] in
  B.call fb "ngx_init_cycle" [];
  B.call fb "ngx_master_cycle" [];
  B.halt fb;
  B.seal fb;

  (match filler_counts with
  | Some (direct, indirect) when direct + indirect > 0 ->
    ignore (add_filler pb ~prefix:"ngx" ~direct ~indirect)
  | Some _ | None -> ());
  B.build pb ~entry:"main"

(** Build the model; with [p.filler] the static callsite counts are
    padded up to the paper's Table 5 numbers. *)
let build (p : params) : Sil.Prog.t =
  let base = construct ~filler_counts:None p in
  if not p.filler then base
  else begin
    let stats = Appkit.callsite_stats base in
    let missing_indirect = max 0 (table5_indirect_callsites - stats.indirect_count) in
    let missing_direct =
      max 0 (table5_total_callsites - stats.total_callsites - missing_indirect)
    in
    construct ~filler_counts:(Some (missing_direct, missing_indirect)) p
  end

(** Kernel-side setup: the served page, the log file, and the pending
    client connections (what wrk generates). *)
let setup (p : params) (proc : Kernel.Process.t) =
  Kernel.Vfs.add_file proc.vfs page_path ~size_words:p.page_words;
  Kernel.Vfs.add_file proc.vfs log_path ~size_words:0;
  Kernel.Vfs.add_file proc.vfs binary_path ~size_words:2048;
  for _ = 1 to p.connections do
    ignore
      (Kernel.Net.enqueue proc.net listen_port ~request_words:64 ~payload:"GET /index.html")
  done

(** Throughput in MB/s: bytes served per simulated second. *)
let throughput_mb_s (proc : Kernel.Process.t) (m : Machine.t) =
  ignore m;
  let bytes = float_of_int (proc.io_words_out * 8) in
  let seconds =
    float_of_int (Kernel.Process.serve_cycles proc) /. Drivers_config.cycles_per_second
  in
  bytes /. (1024.0 *. 1024.0) /. seconds
