(** The NGINX application model: an init phase with the paper's
    sensitive-syscall mix (Table 4), a keep-alive worker loop with the
    request-path file I/O, the two indirect-call sites of Listings 1-2
    (ctx->output_filter, v[index].get_handler) and the rarely-used
    binary-upgrade path whose [execve(ctx->path, ctx->argv, ctx->envp)]
    is the paper's running example. *)

type params = {
  connections : int;        (** accept4 invocations (5,665 at paper scale) *)
  requests_per_conn : int;  (** keep-alive requests per connection *)
  page_words : int;         (** served page size (6,745 B ~ 843 words) *)
  workers : int;
  init_mmap : int;          (** Table 4: 534 *)
  init_mprotect : int;      (** Table 4: 334 *)
  filler : bool;            (** pad static structure to Table 5 scale *)
}

val default : params

(** Golden-corpus / fleet scale: the same program structure with the
    dynamic parameters shrunk to a few hundred traps per run. *)
val small : params

(** Parameters matching the paper's Table 4 run. *)
val paper_scale : params

val page_path : string
val binary_path : string
val log_path : string
val listen_port : int

val table5_total_callsites : int
val table5_indirect_callsites : int

(** Build the model (padded to Table 5 scale when [filler]). *)
val build : params -> Sil.Prog.t

(** Kernel-side setup: served page, log file, pending connections. *)
val setup : params -> Kernel.Process.t -> unit

(** MB/s over the serving window (the wrk metric). *)
val throughput_mb_s : Kernel.Process.t -> Machine.t -> float
