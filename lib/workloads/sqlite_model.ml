(* The SQLite application model under a DBT2-style (TPC-C new-order)
   load.

   Structure per the paper's measurements: sensitive syscalls at
   initialisation (mmap for the page cache, clone for the worker pool,
   one socket/bind/listen for the service port), plus — unlike NGINX —
   recurring mprotect during the run: SQLite's memory subsystem
   re-hardens regions as it recycles them, which is why Table 4 shows
   501 runtime mprotect calls and why the Argument-Integrity context
   costs more here.  The VDBE opcode dispatch is indirect-call-heavy,
   which is what makes LLVM CFI's per-indirect-call checks relatively
   expensive (2.56% in Figure 3). *)

module B = Sil.Builder
open Sil.Operand
open Appkit

type params = {
  connections : int;       (** DBT2 client connections (Table 4: accept 11) *)
  txns_per_conn : int;     (** new-order transactions per connection *)
  mprotect_every : int;    (** one mprotect per this many transactions *)
  rows_per_txn : int;      (** rows read per new-order transaction *)
  row_words : int;
  vdbe_ops_per_txn : int;  (** indirect opcode dispatches per transaction *)
  init_mmap : int;         (** Table 4: 42 *)
  init_clone : int;        (** Table 4: 48 *)
  filler : bool;
}

let default =
  {
    connections = 11;
    txns_per_conn = 180;
    mprotect_every = 40;
    rows_per_txn = 10;
    row_words = 120;
    vdbe_ops_per_txn = 48;
    init_mmap = 42;
    init_clone = 48;
    filler = true;
  }

(* Golden-corpus / fleet scale: see Nginx_model.small. *)
let small = { default with connections = 3; txns_per_conn = 8; mprotect_every = 4 }

(** Matches Table 4 exactly: 11 connections, 501 runtime mprotect. *)
let paper_scale = { default with connections = 10; txns_per_conn = 501; mprotect_every = 10 }

let db_path = "/data/test.db"
let journal_path = "/data/test.db-journal"
let service_port = 5432

let table5_total_callsites = 12253
let table5_indirect_callsites = 227

let construct ~filler_counts (p : params) : Sil.Prog.t =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.struct_ pb "vdbe_op_t" [ ("handler", ptr); ("p1", i64); ("p2", i64) ];
  B.global pb "g_db_fd" i64 Sil.Prog.Zero;
  B.global pb "g_journal_fd" i64 Sil.Prog.Zero;
  B.global pb "g_listen_fd" i64 Sil.Prog.Zero;
  B.global pb "g_vdbe_ops" (Sil.Types.Array (Sil.Types.Struct "vdbe_op_t", 8)) Sil.Prog.Zero;
  B.global pb "g_txn_count" i64 Sil.Prog.Zero;
  B.global pb "g_heap_base" ptr Sil.Prog.Zero;

  (* VDBE opcode handlers: indirect-call targets. *)
  List.iter
    (fun name ->
      let fb = B.func pb name ~params:[ ("p1", i64); ("p2", i64) ] in
      let x = B.local fb "x" i64 in
      B.binop fb x Sil.Instr.Add (Var (B.param fb 0)) (Var (B.param fb 1));
      B.binop fb x Sil.Instr.Xor (Var x) (const 0x55);
      B.ret fb (Some (Var x));
      B.seal fb)
    [ "vdbe_op_column"; "vdbe_op_add"; "vdbe_op_insert"; "vdbe_op_halt" ];

  (* sqlite3_mem_harden: the recurring runtime mprotect, with the
     protection flags flowing through a local (sensitive chain). *)
  let fb = B.func pb "sqlite3_mem_harden" ~params:[ ("region", ptr) ] in
  let prots = B.local fb "prots" i64 in
  B.binop fb prots Sil.Instr.Or (const 1) (const 2);
  B.call fb "mprotect" [ Var (B.param fb 0); const 4096; Var prots ];
  B.ret fb None;
  B.seal fb;

  (* Pager I/O: read a row via lseek+read. *)
  let fb = B.func pb "sqlite3_pager_read" ~params:[ ("offset", i64); ("nwords", i64) ] in
  let fd = B.local fb "fd" i64 in
  let n = B.local fb "n" i64 in
  B.load fb fd (Sil.Place.Lglobal "g_db_fd");
  B.call fb "lseek" [ Var fd; Var (B.param fb 0); const 0 ];
  B.call fb ~dst:n "read" [ Var fd; Null; Var (B.param fb 1) ];
  B.ret fb (Some (Var n));
  B.seal fb;

  let fb = B.func pb "sqlite3_pager_write" ~params:[ ("nwords", i64) ] in
  let fd = B.local fb "fd" i64 in
  B.load fb fd (Sil.Place.Lglobal "g_journal_fd");
  B.call fb "write" [ Var fd; Null; Var (B.param fb 0) ];
  B.ret fb None;
  B.seal fb;

  (* VDBE bytecode interpreter: indirect dispatch per opcode. *)
  let fb = B.func pb "sqlite3_vdbe_exec" ~params:[ ("nops", i64) ] in
  let base = B.local fb "base" ptr in
  let opp = B.local fb "opp" ptr in
  let handler = B.local fb "handler" ptr in
  let p1 = B.local fb "p1" i64 in
  let p2 = B.local fb "p2" i64 in
  let slot = B.local fb "slot" i64 in
  B.addr_of fb base (Sil.Place.Lglobal "g_vdbe_ops");
  (* The loop count is dynamic (a parameter), so build the loop manually. *)
  let i = B.local fb "i" i64 in
  B.set fb i (const 0);
  B.block fb "op_head";
  let c = B.local fb "c" i64 in
  B.binop fb c Sil.Instr.Lt (Var i) (Var (B.param fb 0));
  B.branch fb (Var c) "op_body" "op_done";
  B.block fb "op_body";
  B.binop fb slot Sil.Instr.And (Var i) (const 3);
  B.addr_of fb opp (Sil.Place.Lindex (Var base, Var slot, Sil.Types.Struct "vdbe_op_t"));
  B.load fb handler (Sil.Place.Lfield (Var opp, "vdbe_op_t", "handler"));
  B.load fb p1 (Sil.Place.Lfield (Var opp, "vdbe_op_t", "p1"));
  B.load fb p2 (Sil.Place.Lfield (Var opp, "vdbe_op_t", "p2"));
  B.call_indirect fb (Var handler) [ Var p1; Var p2 ];
  B.binop fb i Sil.Instr.Add (Var i) (const 1);
  B.jump fb "op_head";
  B.block fb "op_done";
  B.ret fb None;
  B.seal fb;

  (* One new-order transaction. *)
  let fb = B.func pb "sqlite3_new_order_txn" ~params:[] in
  let jfd = B.local fb "jfd" i64 in
  let count = B.local fb "count" i64 in
  let trigger = B.local fb "trigger" i64 in
  let heap = B.local fb "heap" ptr in
  compute_loop fb ~tag:"btree" ~iters:32;
  counted_loop fb ~tag:"rows" ~count:p.rows_per_txn (fun fb ->
      B.call fb "sqlite3_pager_read" [ const 4096; const p.row_words ]);
  B.call fb "sqlite3_vdbe_exec" [ const p.vdbe_ops_per_txn ];
  counted_loop fb ~tag:"journal" ~count:5 (fun fb ->
      B.call fb "sqlite3_pager_write" [ const p.row_words ]);
  B.load fb jfd (Sil.Place.Lglobal "g_journal_fd");
  B.call fb "fsync" [ Var jfd ];
  (* Every mprotect_every transactions, re-harden a recycled region. *)
  B.load fb count (Sil.Place.Lglobal "g_txn_count");
  B.binop fb count Sil.Instr.Add (Var count) (const 1);
  B.store fb (Sil.Place.Lglobal "g_txn_count") (Var count);
  B.binop fb trigger Sil.Instr.Div (Var count) (const p.mprotect_every);
  B.binop fb trigger Sil.Instr.Mul (Var trigger) (const p.mprotect_every);
  B.binop fb trigger Sil.Instr.Eq (Var trigger) (Var count);
  B.branch fb (Var trigger) "harden" "txn_done";
  B.block fb "harden";
  B.load fb heap (Sil.Place.Lglobal "g_heap_base");
  B.call fb "sqlite3_mem_harden" [ Var heap ];
  B.jump fb "txn_done";
  B.block fb "txn_done";
  B.ret fb None;
  B.seal fb;

  (* Cold OS-layer paths: callsites that exist in the binary (shared
     cache setup, debugging W^X flips, realloc's mremap, os_unix fork)
     but never run under DBT2. *)
  let fb = B.func pb "sqlite3_os_cold_paths" ~params:[] in
  let region = B.local fb "region" ptr in
  B.call fb ~dst:region "mmap" [ Null; const 32768; const 3; const 2; const (-1); const 0 ];
  B.call fb "mprotect" [ Var region; const 32768; const 1 ];
  B.call fb "mremap" [ Var region; const 32768; const 65536; const 1 ];
  B.call fb "fork" [];
  B.ret fb None;
  B.seal fb;

  (* Initialisation. *)
  let fb = B.func pb "sqlite3_initialize" ~params:[] in
  let debug = B.local fb "debug" i64 in
  let s = B.local fb "s" i64 in
  let fd = B.local fb "fd" i64 in
  let heap = B.local fb "heap" ptr in
  counted_loop fb ~tag:"cache" ~count:(p.init_mmap - 10) (fun fb ->
      B.call fb "mmap" [ Null; const 8192; const 3; const 2; const (-1); const 0 ]);
  B.call fb ~dst:heap "mmap" [ Null; const 65536; const 3; const 2; const (-1); const 0 ];
  B.store fb (Sil.Place.Lglobal "g_heap_base") (Var heap);
  counted_loop fb ~tag:"scratch" ~count:9 (fun fb ->
      B.call fb "mmap" [ Null; const 4096; const 3; const 2; const (-1); const 0 ]);
  counted_loop fb ~tag:"pool" ~count:p.init_clone (fun fb -> B.call fb "clone" [ const 0 ]);
  B.call fb ~dst:s "socket" [ const 2; const 1; const 0 ];
  B.store fb (Sil.Place.Lglobal "g_listen_fd") (Var s);
  B.call fb "bind" [ Var s; const service_port ];
  B.call fb "listen" [ Var s; const 128 ];
  B.call fb ~dst:fd "open" [ Cstr db_path; const 2 ];
  B.store fb (Sil.Place.Lglobal "g_db_fd") (Var fd);
  B.call fb ~dst:fd "open" [ Cstr journal_path; const 2 ];
  B.store fb (Sil.Place.Lglobal "g_journal_fd") (Var fd);
  B.set fb debug (const 0);
  B.branch fb (Var debug) "cold" "warm";
  B.block fb "cold";
  B.call fb "sqlite3_os_cold_paths" [];
  B.jump fb "warm";
  B.block fb "warm";
  (* VDBE dispatch table. *)
  let base = B.local fb "base" ptr in
  let opp = B.local fb "opp" ptr in
  B.addr_of fb base (Sil.Place.Lglobal "g_vdbe_ops");
  List.iteri
    (fun idx name ->
      B.addr_of fb opp (Sil.Place.Lindex (Var base, const idx, Sil.Types.Struct "vdbe_op_t"));
      B.store fb (Sil.Place.Lfield (Var opp, "vdbe_op_t", "handler")) (Func_addr name);
      B.store fb (Sil.Place.Lfield (Var opp, "vdbe_op_t", "p1")) (const idx);
      B.store fb (Sil.Place.Lfield (Var opp, "vdbe_op_t", "p2")) (const (idx * 2)))
    [ "vdbe_op_column"; "vdbe_op_add"; "vdbe_op_insert"; "vdbe_op_halt" ];
  B.ret fb None;
  B.seal fb;

  (* Service loop: accept DBT2 clients, run their transactions. *)
  let fb = B.func pb "sqlite3_serve_connection" ~params:[ ("fd", i64) ] in
  counted_loop fb ~tag:"txns" ~count:p.txns_per_conn (fun fb ->
      B.call fb "sqlite3_new_order_txn" []);
  B.call fb "close" [ Var (B.param fb 0) ];
  B.ret fb None;
  B.seal fb;

  let fb = B.func pb "sqlite3_service_loop" ~params:[] in
  let lfd = B.local fb "lfd" i64 in
  let sa = B.local fb "sa" (Sil.Types.Array (i64, 2)) in
  let sap = B.local fb "sap" ptr in
  let cfd = B.local fb "cfd" i64 in
  let got = B.local fb "got" i64 in
  B.load fb lfd (Sil.Place.Lglobal "g_listen_fd");
  B.addr_of fb sap (Sil.Place.Lvar sa);
  B.store fb (Sil.Place.Lindex (Var sap, const 0, i64)) (const 0);
  B.store fb (Sil.Place.Lindex (Var sap, const 1, i64)) (const 0);
  B.block fb "accept_loop";
  B.call fb ~dst:cfd "accept" [ Var lfd; Var sap; const 2 ];
  B.binop fb got Sil.Instr.Ge (Var cfd) (const 0);
  B.branch fb (Var got) "serve" "accept_done";
  B.block fb "serve";
  B.call fb "sqlite3_serve_connection" [ Var cfd ];
  B.jump fb "accept_loop";
  B.block fb "accept_done";
  B.ret fb None;
  B.seal fb;

  let fb = B.func pb "main" ~params:[] in
  B.call fb "sqlite3_initialize" [];
  B.call fb "sqlite3_service_loop" [];
  B.halt fb;
  B.seal fb;

  (match filler_counts with
  | Some (direct, indirect) when direct + indirect > 0 ->
    ignore (add_filler pb ~prefix:"sqlite" ~direct ~indirect)
  | Some _ | None -> ());
  B.build pb ~entry:"main"

let build (p : params) : Sil.Prog.t =
  let base = construct ~filler_counts:None p in
  if not p.filler then base
  else begin
    let stats = Appkit.callsite_stats base in
    let missing_indirect = max 0 (table5_indirect_callsites - stats.indirect_count) in
    let missing_direct =
      max 0 (table5_total_callsites - stats.total_callsites - missing_indirect)
    in
    construct ~filler_counts:(Some (missing_direct, missing_indirect)) p
  end

let setup (p : params) (proc : Kernel.Process.t) =
  Kernel.Vfs.add_file proc.vfs db_path ~size_words:(1 lsl 20);
  Kernel.Vfs.add_file proc.vfs journal_path ~size_words:0;
  for _ = 1 to p.connections do
    ignore (Kernel.Net.enqueue proc.net service_port ~request_words:16 ~payload:"NEW_ORDER")
  done

(** New-order transactions per minute (the DBT2 NOTPM metric). *)
let notpm (proc : Kernel.Process.t) (m : Machine.t) =
  let txns = Machine.peek m (Machine.global_address m "g_txn_count") in
  let minutes =
    float_of_int (Kernel.Process.serve_cycles proc) /. Drivers_config.cycles_per_minute
  in
  Int64.to_float txns /. minutes
