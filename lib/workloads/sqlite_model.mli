(** The SQLite application model under a DBT2-style (TPC-C new-order)
    load: init-time mmap/clone/socket, recurring runtime mprotect (the
    Table 4 signature that makes Argument Integrity cost more here),
    and an indirect-call-heavy VDBE opcode dispatch (what makes LLVM
    CFI's per-icall checks most expensive on SQLite). *)

type params = {
  connections : int;       (** DBT2 clients (Table 4: accept 11) *)
  txns_per_conn : int;
  mprotect_every : int;    (** one mprotect per this many transactions *)
  rows_per_txn : int;
  row_words : int;
  vdbe_ops_per_txn : int;  (** indirect opcode dispatches per transaction *)
  init_mmap : int;         (** Table 4: 42 *)
  init_clone : int;        (** Table 4: 48 *)
  filler : bool;
}

val default : params

(** Golden-corpus / fleet scale: the same program structure with the
    dynamic parameters shrunk to a few hundred traps per run. *)
val small : params

(** Matches Table 4: 11 accepts, 501 runtime mprotects. *)
val paper_scale : params

val db_path : string
val journal_path : string
val service_port : int
val table5_total_callsites : int
val table5_indirect_callsites : int

val build : params -> Sil.Prog.t
val setup : params -> Kernel.Process.t -> unit

(** New-order transactions per minute (the DBT2 NOTPM metric). *)
val notpm : Kernel.Process.t -> Machine.t -> float
