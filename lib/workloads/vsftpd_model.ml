(* The vsftpd application model under a dkftpbench-style load.

   FTP's protocol structure drives the distinctive Table 4 profile:
   every passive-mode transfer creates its own data socket
   (socket/bind/listen/accept per file), sessions fork twice (the
   privilege-separated login + post-auth worker) and drop privileges
   (setuid/setgid per session).  Like the real code base, all socket and
   credential syscalls go through shared vsf_sysutil/vsf_secutil
   helpers, which is why vsftpd has so few *distinct* sensitive
   callsites (Table 5: 12) despite many invocations.  Transfers move a
   large file with big sendfile chunks, so the per-syscall trap cost is
   amortised over a lot of data — which is why even the §11.2
   filesystem extension stays cheap on vsftpd (Table 7: 2.41%). *)

module B = Sil.Builder
open Sil.Operand
open Appkit

type params = {
  sessions : int;            (** control connections *)
  pasv_transfers : int;      (** passive-mode downloads in total (76) *)
  active_transfers : int;    (** active-mode downloads (connect: 8) *)
  pasv_cap : int;            (** max passive transfers per session *)
  file_words : int;          (** downloaded file size (100 MB = 13,107,200) *)
  chunk_words : int;         (** sendfile chunk *)
  init_mmap : int;           (** Table 4: 33 *)
  init_mprotect : int;       (** Table 4: 7 *)
  init_clone : int;          (** 36 total = this + 2 per session *)
  filler : bool;
}

let default =
  {
    sessions = 11;
    pasv_transfers = 76;
    active_transfers = 8;
    pasv_cap = 8;
    file_words = 524_288;    (* 4 MB keeps runs quick; same shape as 100 MB *)
    chunk_words = 131_072;   (* vsftpd uses large sendfile chunks *)
    init_mmap = 33;
    init_mprotect = 7;
    init_clone = 14;
    filler = true;
  }

(* Golden-corpus / fleet scale: see Nginx_model.small. *)
let small =
  { default with
    sessions = 3; pasv_transfers = 6; active_transfers = 2;
    file_words = 16_384; chunk_words = 4_096 }

(** Table 4-matching run: 10 sessions plus the final empty accept
    reproduce the paper's 87 accepts, 36 clones, 12 setuid/setgid. *)
let paper_scale = { default with sessions = 10; init_clone = 16 }

let file_path = "/srv/ftp/big.bin"
let control_port = 21
let data_port = 20

let table5_total_callsites = 4695
let table5_indirect_callsites = 7

let construct ~filler_counts (p : params) : Sil.Prog.t =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.struct_ pb "vsf_session_t" [ ("ctrl_fd", i64); ("data_fd", i64); ("uid", i64) ];
  B.global pb "g_listen_fd" i64 Sil.Prog.Zero;
  B.global pb "g_session_no" i64 Sil.Prog.Zero;
  B.global pb "g_pasv_budget" i64 Sil.Prog.Zero;
  B.global pb "g_cmd_handler"
    (Sil.Types.Ptr (Sil.Types.Func { params = [ i64 ]; ret = i64 }))
    (Sil.Prog.Fptr "vsf_cmd_retr");

  (* --- vsf_sysutil helpers: the shared syscall wrappers -------------- *)

  (* Create, bind and listen a TCP socket: one socket/bind/listen
     callsite serving both the control listener and every PASV socket. *)
  let fb =
    B.func pb "vsf_sysutil_listen_socket" ~params:[ ("port", i64); ("backlog", i64) ]
  in
  let s = B.local fb "s" i64 in
  B.call fb ~dst:s "socket" [ const 2; const 1; const 0 ];
  B.call fb "bind" [ Var s; Var (B.param fb 0) ];
  B.call fb "listen" [ Var s; Var (B.param fb 1) ];
  B.ret fb (Some (Var s));
  B.seal fb;

  (* Accept with a zeroed sockaddr, shared by control and data paths. *)
  let fb = B.func pb "vsf_sysutil_accept" ~params:[ ("fd", i64) ] in
  let sa = B.local fb "sa" (Sil.Types.Array (i64, 2)) in
  let sap = B.local fb "sap" ptr in
  let cfd = B.local fb "cfd" i64 in
  B.addr_of fb sap (Sil.Place.Lvar sa);
  B.store fb (Sil.Place.Lindex (Var sap, const 0, i64)) (const 0);
  B.store fb (Sil.Place.Lindex (Var sap, const 1, i64)) (const 0);
  B.call fb ~dst:cfd "accept" [ Var (B.param fb 0); Var sap; const 2 ];
  B.ret fb (Some (Var cfd));
  B.seal fb;

  (* Active-mode data socket. *)
  let fb = B.func pb "vsf_sysutil_connect_sock" ~params:[ ("port", i64) ] in
  let s = B.local fb "s" i64 in
  B.call fb ~dst:s "socket" [ const 2; const 1; const 0 ];
  B.call fb "connect" [ Var s; Var (B.param fb 0) ];
  B.ret fb (Some (Var s));
  B.seal fb;

  (* Session forks (privilege separation). *)
  let fb = B.func pb "vsf_sysutil_fork" ~params:[ ("tag", i64) ] in
  let pid = B.local fb "pid" i64 in
  B.call fb ~dst:pid "clone" [ Var (B.param fb 0) ];
  B.ret fb (Some (Var pid));
  B.seal fb;

  (* Credential switch. *)
  let fb = B.func pb "vsf_secutil_change_credentials" ~params:[ ("uid", i64) ] in
  B.call fb "setuid" [ Var (B.param fb 0) ];
  B.call fb "setgid" [ Var (B.param fb 0) ];
  B.ret fb None;
  B.seal fb;

  (* Command handler: the model's (single) indirect-call target. *)
  let fb = B.func pb "vsf_cmd_retr" ~params:[ ("fd", i64) ] in
  B.ret fb (Some (Var (B.param fb 0)));
  B.seal fb;

  (* --- transfers ------------------------------------------------------ *)

  (* One file transfer over an established data connection. *)
  let fb = B.func pb "vsf_send_file" ~params:[ ("data_fd", i64) ] in
  let ffd = B.local fb "ffd" i64 in
  let sent = B.local fb "sent" i64 in
  let n = B.local fb "n" i64 in
  let more = B.local fb "more" i64 in
  B.call fb ~dst:ffd "open" [ Cstr file_path; const 0 ];
  B.call fb "fstat" [ Var ffd; Null ];
  B.set fb sent (const 0);
  B.block fb "xfer_loop";
  B.binop fb more Sil.Instr.Lt (Var sent) (const p.file_words);
  B.branch fb (Var more) "xfer_body" "xfer_done";
  B.block fb "xfer_body";
  B.call fb ~dst:n "sendfile"
    [ Var (B.param fb 0); Var ffd; Var sent; const p.chunk_words ];
  B.binop fb sent Sil.Instr.Add (Var sent) (Var n);
  B.jump fb "xfer_loop";
  B.block fb "xfer_done";
  B.call fb "close" [ Var ffd ];
  B.ret fb None;
  B.seal fb;

  (* Passive-mode transfer: fresh data socket per file. *)
  let fb = B.func pb "vsf_pasv_transfer" ~params:[] in
  let ds = B.local fb "ds" i64 in
  let dfd = B.local fb "dfd" i64 in
  let got = B.local fb "got" i64 in
  B.call fb ~dst:ds "vsf_sysutil_listen_socket" [ const data_port; const 1 ];
  B.call fb ~dst:dfd "vsf_sysutil_accept" [ Var ds ];
  B.binop fb got Sil.Instr.Ge (Var dfd) (const 0);
  B.branch fb (Var got) "transfer" "pasv_done";
  B.block fb "transfer";
  B.call fb "vsf_send_file" [ Var dfd ];
  B.call fb "close" [ Var dfd ];
  B.jump fb "pasv_done";
  B.block fb "pasv_done";
  B.call fb "close" [ Var ds ];
  B.ret fb (Some (Var got));
  B.seal fb;

  (* Active-mode transfer: server connects back to the client. *)
  let fb = B.func pb "vsf_port_transfer" ~params:[] in
  let ds = B.local fb "ds" i64 in
  B.call fb ~dst:ds "vsf_sysutil_connect_sock" [ const 40000 ];
  B.call fb "vsf_send_file" [ Var ds ];
  B.call fb "close" [ Var ds ];
  B.ret fb None;
  B.seal fb;

  (* --- session handling ----------------------------------------------- *)

  let fb = B.func pb "vsf_handle_session" ~params:[ ("ctrl_fd", i64) ] in
  let sess = B.local fb "sess" (Sil.Types.Struct "vsf_session_t") in
  let sessp = B.local fb "sessp" ptr in
  let sno = B.local fb "sno" i64 in
  let first = B.local fb "first" i64 in
  let k = B.local fb "k" i64 in
  let ok = B.local fb "ok" i64 in
  let h = B.local fb "h" ptr in
  B.addr_of fb sessp (Sil.Place.Lvar sess);
  B.store fb (Sil.Place.Lfield (Var sessp, "vsf_session_t", "ctrl_fd")) (Var (B.param fb 0));
  B.call fb "vsf_sysutil_fork" [ const 0 ];  (* privilege-separated login helper *)
  B.call fb "vsf_sysutil_fork" [ const 1 ];  (* post-auth worker *)
  B.call fb "vsf_secutil_change_credentials" [ const 1001 ];
  B.call fb ~dst:k "read" [ Var (B.param fb 0); Null; const 8 ];  (* RETR cmd *)
  B.load fb h (Sil.Place.Lglobal "g_cmd_handler");
  B.call_indirect fb (Var h) [ Var (B.param fb 0) ];
  (* Passive transfers, bounded per session and by the benchmark's
     shared download budget. *)
  let budget = B.local fb "budget" i64 in
  B.set fb k (const 0);
  B.block fb "pasv_head";
  let c = B.local fb "c" i64 in
  B.binop fb c Sil.Instr.Lt (Var k) (const p.pasv_cap);
  B.branch fb (Var c) "pasv_check" "pasv_exit";
  B.block fb "pasv_check";
  B.load fb budget (Sil.Place.Lglobal "g_pasv_budget");
  B.binop fb c Sil.Instr.Gt (Var budget) (const 0);
  B.branch fb (Var c) "pasv_body" "pasv_exit";
  B.block fb "pasv_body";
  B.binop fb budget Sil.Instr.Sub (Var budget) (const 1);
  B.store fb (Sil.Place.Lglobal "g_pasv_budget") (Var budget);
  B.call fb ~dst:ok "vsf_pasv_transfer" [];
  B.binop fb k Sil.Instr.Add (Var k) (const 1);
  B.jump fb "pasv_head";
  B.block fb "pasv_exit";
  (* Active-mode transfers: performed by the first session only. *)
  B.load fb sno (Sil.Place.Lglobal "g_session_no");
  B.binop fb first Sil.Instr.Eq (Var sno) (const 1);
  B.branch fb (Var first) "active" "sess_done";
  B.block fb "active";
  counted_loop fb ~tag:"port" ~count:p.active_transfers (fun fb ->
      B.call fb "vsf_port_transfer" []);
  B.jump fb "sess_done";
  B.block fb "sess_done";
  B.call fb "write" [ Var (B.param fb 0); Null; const 4 ];  (* 226 reply *)
  B.call fb "close" [ Var (B.param fb 0) ];
  B.ret fb None;
  B.seal fb;

  (* --- init + accept loop --------------------------------------------- *)

  let fb = B.func pb "vsf_init" ~params:[] in
  let s = B.local fb "s" i64 in
  counted_loop fb ~tag:"pools" ~count:p.init_mmap (fun fb ->
      B.call fb "mmap" [ Null; const 4096; const 3; const 2; const (-1); const 0 ]);
  counted_loop fb ~tag:"harden" ~count:p.init_mprotect (fun fb ->
      B.call fb "mprotect" [ Null; const 4096; const 1 ]);
  counted_loop fb ~tag:"helpers" ~count:p.init_clone (fun fb ->
      B.call fb "clone" [ const 0 ]);
  (* Two startup privilege transitions: the listener process, then the
     privileged helper. *)
  B.call fb "vsf_secutil_change_credentials" [ const 0 ];
  B.call fb "vsf_secutil_change_credentials" [ const 1000 ];
  B.call fb ~dst:s "vsf_sysutil_listen_socket" [ const control_port; const 32 ];
  B.store fb (Sil.Place.Lglobal "g_listen_fd") (Var s);
  B.ret fb None;
  B.seal fb;

  let fb = B.func pb "vsf_accept_loop" ~params:[] in
  let lfd = B.local fb "lfd" i64 in
  let cfd = B.local fb "cfd" i64 in
  let got = B.local fb "got" i64 in
  let sno = B.local fb "sno" i64 in
  B.load fb lfd (Sil.Place.Lglobal "g_listen_fd");
  B.block fb "accept_loop";
  B.call fb ~dst:cfd "vsf_sysutil_accept" [ Var lfd ];
  B.binop fb got Sil.Instr.Ge (Var cfd) (const 0);
  B.branch fb (Var got) "serve" "accept_done";
  B.block fb "serve";
  B.load fb sno (Sil.Place.Lglobal "g_session_no");
  B.binop fb sno Sil.Instr.Add (Var sno) (const 1);
  B.store fb (Sil.Place.Lglobal "g_session_no") (Var sno);
  B.call fb "vsf_handle_session" [ Var cfd ];
  B.jump fb "accept_loop";
  B.block fb "accept_done";
  B.ret fb None;
  B.seal fb;

  let fb = B.func pb "main" ~params:[] in
  B.call fb "vsf_init" [];
  B.call fb "vsf_accept_loop" [];
  B.halt fb;
  B.seal fb;

  (match filler_counts with
  | Some (direct, indirect) when direct + indirect > 0 ->
    ignore (add_filler pb ~prefix:"vsf" ~direct ~indirect)
  | Some _ | None -> ());
  B.build pb ~entry:"main"

let build (p : params) : Sil.Prog.t =
  let base = construct ~filler_counts:None p in
  if not p.filler then base
  else begin
    let stats = Appkit.callsite_stats base in
    let missing_indirect = max 0 (table5_indirect_callsites - stats.indirect_count) in
    let missing_direct =
      max 0 (table5_total_callsites - stats.total_callsites - missing_indirect)
    in
    construct ~filler_counts:(Some (missing_direct, missing_indirect)) p
  end

let setup (p : params) (proc : Kernel.Process.t) =
  Kernel.Vfs.add_file proc.vfs file_path ~size_words:p.file_words;
  for _ = 1 to p.sessions do
    ignore
      (Kernel.Net.enqueue proc.net control_port ~request_words:8 ~payload:"RETR big.bin")
  done;
  for _ = 1 to p.pasv_transfers do
    ignore (Kernel.Net.enqueue proc.net data_port ~request_words:1 ~payload:"data")
  done;
  (* The shared benchmark budget lives in program memory. *)
  Machine.poke proc.machine
    (Machine.global_address proc.machine "g_pasv_budget")
    (Int64.of_int p.pasv_transfers)

(** Milliseconds to download one file (the dkftpbench metric; lower is
    better).  Averaged over all transfers in the run. *)
let seconds_per_download (p : params) (proc : Kernel.Process.t) (m : Machine.t) =
  ignore m;
  let transfers = float_of_int (p.pasv_transfers + p.active_transfers) in
  float_of_int (Kernel.Process.serve_cycles proc)
  /. Drivers_config.cycles_per_second /. transfers *. 1000.0
