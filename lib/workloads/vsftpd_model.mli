(** The vsftpd application model under a dkftpbench-style load:
    per-transfer passive-mode sockets (socket/bind/listen/accept per
    file), two forks and a privilege drop per session, and large
    sendfile chunks that amortise per-trap cost (why Table 7 stays
    cheap on vsftpd).  Socket and credential syscalls go through shared
    vsf_sysutil/vsf_secutil helpers, like the real code base. *)

type params = {
  sessions : int;
  pasv_transfers : int;      (** Table 4: 76 *)
  active_transfers : int;    (** Table 4: connect 8 *)
  pasv_cap : int;            (** max passive transfers per session *)
  file_words : int;          (** 100 MB = 13,107,200 at paper scale *)
  chunk_words : int;
  init_mmap : int;           (** Table 4: 33 *)
  init_mprotect : int;       (** Table 4: 7 *)
  init_clone : int;
  filler : bool;
}

val default : params

(** Golden-corpus / fleet scale: the same program structure with the
    dynamic parameters shrunk to a few hundred traps per run. *)
val small : params

(** Matches Table 4: 87 accepts, 36 clones, 12 setuid/setgid. *)
val paper_scale : params

val file_path : string
val control_port : int
val data_port : int
val table5_total_callsites : int
val table5_indirect_callsites : int

val build : params -> Sil.Prog.t
val setup : params -> Kernel.Process.t -> unit

(** Milliseconds per download over the serving window (lower is
    better). *)
val seconds_per_download : params -> Kernel.Process.t -> Machine.t -> float
