(* Last-mile unit coverage: pretty-printer constructors, exit codes,
   builder declarations, shadow binding keyspace, stats plumbing. *)

module B = Sil.Builder
open Sil.Operand

let i64 = Sil.Types.I64

let test_pp_all_constructs () =
  let show_instr i = Format.asprintf "%a" Sil.Pp.pp_instr i in
  let v = { Sil.Operand.vid = 0; vname = "v" } in
  Alcotest.(check string) "assign use" "%v.0 = 7" (show_instr (Assign (v, Use (const 7))));
  Alcotest.(check string) "assign load" "%v.0 = load @g"
    (show_instr (Assign (v, Load (Lglobal "g"))));
  Alcotest.(check string) "assign addr" "%v.0 = addr %v.0"
    (show_instr (Assign (v, Addr_of (Lvar v))));
  Alcotest.(check string) "binop" "%v.0 = xor 1, 2"
    (show_instr (Assign (v, Binop (Xor, const 1, const 2))));
  Alcotest.(check string) "store deref" "store *%v.0 <- null"
    (show_instr (Store (Lderef (Var v), Null)));
  Alcotest.(check string) "indirect call" "call *%v.0(&f)"
    (show_instr (Call { dst = None; target = Indirect (Var v); args = [ Func_addr "f" ] }));
  let show_term t = Format.asprintf "%a" Sil.Pp.pp_terminator t in
  Alcotest.(check string) "branch" "branch %v.0 ? a : b"
    (show_term (Branch (Var v, "a", "b")));
  Alcotest.(check string) "halt" "halt" (show_term Halt);
  Alcotest.(check string) "ret value" "ret 3" (show_term (Ret (Some (const 3))))

let test_exit_codes () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  let fb = B.func pb "main" ~params:[] in
  B.call fb "exit" [ const 42 ];
  B.halt fb;
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  let machine = Machine.create prog in
  ignore (Kernel.boot machine);
  match Machine.run machine with
  | Machine.Exited code -> Alcotest.(check int64) "exit code" 42L code
  | Machine.Faulted f -> Alcotest.failf "fault %s" (Machine.fault_to_string f)

let test_entry_return_value () =
  let pb = B.program () in
  let fb = B.func pb "main" ~params:[] in
  let x = B.local fb "x" i64 in
  B.binop fb x Sil.Instr.Mul (const 6) (const 9);
  B.ret fb (Some (Var x));
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  let machine = Machine.create prog in
  match Machine.run machine with
  | Machine.Exited code -> Alcotest.(check int64) "entry ret is exit value" 54L code
  | Machine.Faulted f -> Alcotest.failf "fault %s" (Machine.fault_to_string f)

let test_intrinsic_declaration () =
  let pb = B.program () in
  B.intrinsic pb "my_probe" ~arity:2;
  let fb = B.func pb "main" ~params:[] in
  B.call fb "my_probe" [ const 1; const 2 ];
  B.halt fb;
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  Sil.Validate.check_exn prog;
  let machine = Machine.create prog in
  let seen = ref None in
  machine.on_intrinsic <-
    Some
      (fun _ ~name ~args ->
        seen := Some (name, args);
        99L);
  Testlib.check_exit (Machine.run machine);
  match !seen with
  | Some ("my_probe", [| 1L; 2L |]) -> ()
  | _ -> Alcotest.fail "intrinsic not dispatched with its arguments"

let test_binding_keyspace () =
  (* Distinct (id, pos) pairs give distinct keys. *)
  let keys = ref [] in
  for id = 0 to 40 do
    for pos = 0 to 5 do
      keys := Bastion.Shadow_memory.binding_key ~id ~pos :: !keys
    done
  done;
  let n = List.length !keys in
  Alcotest.(check int) "all distinct" n
    (List.length (List.sort_uniq Stdlib.compare !keys))

let test_machine_stats_plumbing () =
  let prog = Testlib.exec_program () in
  let machine = Machine.create prog in
  ignore (Kernel.boot machine);
  ignore (Machine.run machine);
  let s = machine.stats in
  Alcotest.(check bool) "instrs counted" true (s.instrs > 0);
  Alcotest.(check bool) "calls counted" true (s.calls > 0);
  Alcotest.(check bool) "one indirect call" true (s.indirect_calls = 1);
  Alcotest.(check bool) "syscalls counted" true (s.syscalls >= 3);
  Alcotest.(check bool) "rets counted" true (s.rets > 0);
  Alcotest.(check bool) "cycles monotone proxy" true (s.cycles > s.instrs)

let test_monitor_depth_window () =
  (* Depth stats are absent when neither CF nor AI fetched frames. *)
  let prog = Testlib.exec_program () in
  let protected_prog = Bastion.Api.protect prog in
  let session =
    Bastion.Api.launch
      ~monitor_config:
        {
          Bastion.Monitor.default_config with
          contexts = { Bastion.Monitor.ct = true; cf = false; ai = false };
        }
      protected_prog ()
  in
  Testlib.check_exit (Machine.run session.machine);
  Alcotest.(check bool) "no frame walks in CT-only mode" true
    (Bastion.Monitor.depth_stats session.monitor = None)

(* --- tier-transition matrix coverage ----------------------------------- *)

(* The differential-replay tier matrix is 6x6.  This test runs a small
   battery of metadata mutations and asserts that every (before, after)
   pair is either observed at least once across the battery or
   documented unreachable with a reason — so a new movement kind can
   never appear silently, and a documented-unreachable cell firing is a
   test failure that forces the table (and the docs) to be updated. *)
let test_tier_transition_matrix () =
  let module Engine = Bastion_replay.Engine in
  let module Trace = Bastion_replay.Trace in
  let module Drivers = Workloads.Drivers in
  let observed : (string * string, unit) Hashtbl.t = Hashtbl.create 36 in
  let note (r : Engine.diff_report) =
    List.iter (fun (b, a, _) -> Hashtbl.replace observed (b, a) ()) r.dr_tier_matrix
  in
  let with_recording ?pre_resolve ?prefilter app scenarios =
    let path = Filename.temp_file "bastion-matrix" ".jsonl" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        ignore
          (Engine.record_run ?pre_resolve ?prefilter ~app ~scale:"small"
             ~defense:Drivers.Bastion_full ~path ());
        let tr = Trace.read_file path in
        let base = Engine.base_bundle tr in
        let text = Bastion.Metadata_io.write base in
        List.iter
          (fun against ->
            note (Engine.diff_replay ?against:(against base text) tr))
          scenarios)
  in
  let edited f base text =
    Some (Test_replay.against_of_text base (f text))
  in
  let drop_records prefix =
    List.filter (fun l -> not (String.starts_with ~prefix l))
  in
  (* Identity diffs: the diagonal of every tier a recording visits. *)
  with_recording ~pre_resolve:true "nginx"
    [
      (fun _ _ -> None);
      (* dropped static pre-resolution: pre-resolved -> cheap/full *)
      edited (Test_replay.edit_section "static" (drop_records "pre-resolved"));
      (* the whole static section gone: every static tier -> cheap/full *)
      edited (Test_replay.edit_section "static" (fun _ -> []));
    ];
  with_recording ~pre_resolve:true "vsftpd"
    [
      (fun _ _ -> None);
      (* tainting every rank disables the cheap path: cheap -> full *)
      edited
        (Test_replay.edit_section "static"
           (List.map (fun l ->
                if
                  String.starts_with ~prefix:"slot-rank " l
                  && String.ends_with ~suffix:" u" l
                then String.sub l 0 (String.length l - 1) ^ "t"
                else l)));
      edited (Test_replay.edit_section "static" (fun _ -> []));
    ];
  (* Enrichment direction: full/cheap work moves down to static tiers. *)
  with_recording "nginx"
    [ (fun base _ -> Some (Bastion_analysis.Preresolve.enrich base)) ];
  with_recording "vsftpd"
    [ (fun base _ -> Some (Bastion_analysis.Preresolve.enrich base)) ];
  (* CF edges removed: allowed traps become control-flow denials. *)
  with_recording "sqlite"
    [
      edited (Test_replay.edit_section "cfg" (drop_records "valid-caller "));
    ];
  with_recording ~pre_resolve:true "nginx"
    [
      edited (Test_replay.edit_section "cfg" (drop_records "valid-caller "));
    ];
  let tiers =
    [ "prefilter"; "cached"; "pre-resolved"; "ctx"; "cheap"; "full" ]
  in
  (* Cells no metadata mutation can produce, with the reason.  The
     assertion is two-sided: reachable cells must be observed above,
     and a documented-unreachable cell being observed fails too. *)
  let unreachable =
    [
      (* The whole prefilter row and column: the syscall-flow automaton
         is extracted from the instrumented *program*
         (Flowgraph.extract reads p.inst.iprog), and diff-replay pins
         the program — only the metadata varies.  No metadata edit can
         move the seccomp boundary, so a trap resolves at the prefilter
         in the fresh run iff it did in the recorded one — and such
         traps appear in neither stream.  The engine still counts
         boundary movements (dr_moved_to_prefilter, dr_fresh_unmatched)
         for deployments where the program itself differs. *)
      ("prefilter", "prefilter");
      ("prefilter", "cached");
      ("prefilter", "pre-resolved");
      ("prefilter", "ctx");
      ("prefilter", "cheap");
      ("prefilter", "full");
      ("cached", "prefilter");
      ("pre-resolved", "prefilter");
      ("ctx", "prefilter");
      ("cheap", "prefilter");
      ("full", "prefilter");
      (* Moves into cached: the verdict-cache disposition is a function
         of the replayed trap stream alone (key recurrence), and
         diff-replay preserves the stream; metadata edits act on the AI
         tiers below the cache probe.  A trap lands on cached fresh iff
         it was cached recorded. *)
      ("pre-resolved", "cached");
      ("ctx", "cached");
      ("cheap", "cached");
      ("full", "cached");
      (* Moves off cached land only on full: the same stream warms the
         same keys, so a cache-vouched trap stays vouched unless an
         upstream fresh denial kept the cache cold — and then the full
         judging pipeline runs (cached->full, observed above), never a
         static AI shortcut (those slots were not statically settled,
         or the trap would not have been probing the cache). *)
      ("cached", "pre-resolved");
      ("cached", "ctx");
      ("cached", "cheap");
      (* Cross moves between the static AI tiers: the enrichment pass
         settles disjoint slot sets per tier — a globally constant slot
         is recorded plain pre-resolved, a 1-context one per-caller,
         and taint ranks are only computed for what remains.  Dropping
         one record family therefore falls through to the full walk
         (x->full, observed above), never sideways to another static
         tier, and enrichment gains come only from the full walk. *)
      ("pre-resolved", "ctx");
      ("pre-resolved", "cheap");
      ("ctx", "pre-resolved");
      ("ctx", "cheap");
      ("cheap", "pre-resolved");
      ("cheap", "ctx");
    ]
  in
  List.iter
    (fun b ->
      List.iter
        (fun a ->
          let seen = Hashtbl.mem observed (b, a) in
          if List.mem (b, a) unreachable then
            Alcotest.(check bool)
              (Printf.sprintf "%s->%s stays unreachable (documented)" b a)
              false seen
          else
            Alcotest.(check bool)
              (Printf.sprintf "%s->%s exercised" b a)
              true seen)
        tiers)
    tiers

let suites =
  [
    ( "coverage",
      [
        Alcotest.test_case "pretty-printer constructs" `Quick test_pp_all_constructs;
        Alcotest.test_case "exit codes" `Quick test_exit_codes;
        Alcotest.test_case "entry return value" `Quick test_entry_return_value;
        Alcotest.test_case "intrinsic declaration + dispatch" `Quick
          test_intrinsic_declaration;
        Alcotest.test_case "binding keyspace" `Quick test_binding_keyspace;
        Alcotest.test_case "machine stats plumbing" `Quick test_machine_stats_plumbing;
        Alcotest.test_case "depth stats need frame walks" `Quick test_monitor_depth_window;
        Alcotest.test_case "tier-transition matrix fully accounted" `Slow
          test_tier_transition_matrix;
      ] );
  ]
