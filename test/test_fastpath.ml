(* Tests for the trap fast path: the CT+CF verdict cache (hit/miss,
   epoch invalidation, key sensitivity down to single-bit token
   corruption), the coalesced ptrace snapshot (per-trap call count),
   the cache-on/off cycle win on the real workloads, the Table 6
   invariance, and the bench harness's JSON round-trip. *)

module VC = Bastion.Verdict_cache
module D = Workloads.Drivers
module B = Sil.Builder

let i64 = Sil.Types.I64

(* --- verdict cache units ---------------------------------------------- *)

let chain1 = [ ("main", None); ("helper", Some 0xBEEF_CAFEL) ]

let test_cache_hit_miss () =
  let c = VC.create ~size:64 () in
  Alcotest.(check int) "size rounded to power of two" 64 (VC.size c);
  let k = VC.key ~sysno:9 ~rip:0x400010L ~chain:chain1 in
  Alcotest.(check bool) "cold probe misses" false (VC.probe c k);
  VC.record c k;
  Alcotest.(check bool) "probe after record hits" true (VC.probe c k);
  let k_other_sysno = VC.key ~sysno:10 ~rip:0x400010L ~chain:chain1 in
  let k_other_rip = VC.key ~sysno:9 ~rip:0x400018L ~chain:chain1 in
  Alcotest.(check bool) "different sysno misses" false (VC.probe c k_other_sysno);
  Alcotest.(check bool) "different rip misses" false (VC.probe c k_other_rip);
  Alcotest.(check int) "hit count" 1 (VC.hits c);
  Alcotest.(check int) "miss count" 3 (VC.misses c);
  Alcotest.(check int) "record count" 1 (VC.records c)

let test_cache_key_chain_sensitivity () =
  let key chain = VC.key ~sysno:9 ~rip:0x400010L ~chain in
  let base = key chain1 in
  Alcotest.(check bool) "key is deterministic" true (Int64.equal base (key chain1));
  Alcotest.(check bool) "token value matters" false
    (Int64.equal base (key [ ("main", None); ("helper", Some 0xBEEF_CAFFL) ]));
  Alcotest.(check bool) "token presence matters" false
    (Int64.equal base (key [ ("main", None); ("helper", None) ]));
  Alcotest.(check bool) "function name matters" false
    (Int64.equal base (key [ ("main", None); ("helpers", Some 0xBEEF_CAFEL) ]));
  Alcotest.(check bool) "chain order matters" false
    (Int64.equal base (key (List.rev chain1)));
  Alcotest.(check bool) "chain length matters" false
    (Int64.equal base (key (chain1 @ [ ("leaf", Some 1L) ])))

let test_cache_epoch_invalidation () =
  let c = VC.create ~size:64 () in
  let k = VC.key ~sysno:9 ~rip:0x400010L ~chain:chain1 in
  VC.record c k;
  Alcotest.(check bool) "hits before bump" true (VC.probe c k);
  VC.bump_epoch c;
  Alcotest.(check int) "epoch advanced" 1 (VC.epoch c);
  Alcotest.(check bool) "stale entry misses after bump" false (VC.probe c k);
  VC.record c k;
  Alcotest.(check bool) "re-recorded under new epoch hits" true (VC.probe c k)

(* qcheck: corrupting any single bit of any cached return token changes
   the key and therefore forces a miss — the safety argument for ROP'd
   or pivoted stacks, made exact by the key's bijective mixing. *)
let prop_token_corruption_misses =
  QCheck.Test.make ~count:500
    ~name:"single-bit return-token corruption forces a cache miss"
    QCheck.(
      triple
        (list_of_size (Gen.int_range 1 6)
           (pair (int_range 0 20) (map Int64.of_int int)))
        small_nat (int_range 0 63))
    (fun (raw, which, bit) ->
      let chain =
        List.map (fun (i, tok) -> (Printf.sprintf "fn%d" i, Some tok)) raw
      in
      let idx = which mod List.length chain in
      let corrupted =
        List.mapi
          (fun i (f, tok) ->
            if i = idx then
              (f, Option.map (fun t -> Int64.logxor t (Int64.shift_left 1L bit)) tok)
            else (f, tok))
          chain
      in
      let c = VC.create ~size:256 () in
      let k = VC.key ~sysno:9 ~rip:0x400100L ~chain in
      let k' = VC.key ~sysno:9 ~rip:0x400100L ~chain:corrupted in
      VC.record c k;
      (not (Int64.equal k k')) && VC.probe c k && not (VC.probe c k'))

(* --- coalesced snapshot: per-trap ptrace call count ------------------- *)

(* A deep direct-call chain above a single mmap callsite: with per-frame
   reads every trap would cost [depth + 1] process_vm_readv calls; the
   coalesced snapshot caps it at two (stack span + slot spans). *)
let chain_program depth traps =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  let open Sil.Operand in
  let leaf = Printf.sprintf "level%d" depth in
  let fb = B.func pb leaf ~params:[ ("n", i64) ] in
  B.call fb "mmap" [ Null; Var (B.param fb 0); const 3; const 2; const (-1); const 0 ];
  B.ret fb None;
  B.seal fb;
  for i = depth - 1 downto 1 do
    let fb = B.func pb (Printf.sprintf "level%d" i) ~params:[ ("n", i64) ] in
    B.call fb (Printf.sprintf "level%d" (i + 1)) [ Var (B.param fb 0) ];
    B.ret fb None;
    B.seal fb
  done;
  let fb = B.func pb "main" ~params:[] in
  Workloads.Appkit.counted_loop fb ~tag:"traps" ~count:traps (fun fb ->
      B.call fb "level1" [ const 4096 ]);
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let run_chain ~trap_cache depth traps =
  let protected_prog = Bastion.Api.protect (chain_program depth traps) in
  let session =
    Bastion.Api.launch
      ~monitor_config:{ Bastion.Monitor.default_config with trap_cache }
      protected_prog ()
  in
  (match Machine.run session.machine with
  | Machine.Exited _ -> ()
  | Machine.Faulted f -> Alcotest.fail (Machine.fault_to_string f));
  session

let test_snapshot_coalesces_reads () =
  let depth = 16 and traps = 50 in
  let session = run_chain ~trap_cache:true depth traps in
  let tracer = session.process.tracer in
  let trap_count = session.process.trap_count in
  Alcotest.(check bool) "program trapped" true (trap_count >= traps);
  (* Per-frame reads would make calls_made >= frames_walked; the
     snapshot issues at most two calls per trap regardless of depth. *)
  Alcotest.(check bool)
    (Printf.sprintf "coalesced: %d calls for %d frames walked"
       tracer.Kernel.Ptrace.calls_made tracer.Kernel.Ptrace.frames_walked)
    true
    (tracer.Kernel.Ptrace.calls_made < tracer.Kernel.Ptrace.frames_walked);
  Alcotest.(check bool)
    (Printf.sprintf "at most 2 snapshot calls per trap (%d/%d)"
       tracer.Kernel.Ptrace.calls_made trap_count)
    true
    (tracer.Kernel.Ptrace.calls_made <= 2 * trap_count)

let test_cache_wins_on_chain () =
  let depth = 16 and traps = 50 in
  let on = run_chain ~trap_cache:true depth traps in
  let off = run_chain ~trap_cache:false depth traps in
  let hits, _, _ = Bastion.Monitor.cache_stats on.monitor in
  Alcotest.(check bool) "repeated identical traps hit" true (hits > 0);
  Alcotest.(check bool) "cache-on cycles strictly lower" true
    (on.machine.stats.cycles < off.machine.stats.cycles)

(* --- workload-level acceptance: cycles drop, hit rate high ------------ *)

let test_workload_cache_cycle_decrease () =
  List.iter
    (fun (app : D.app) ->
      List.iter
        (fun defense ->
          let on = D.run ~trap_cache:true app defense in
          let off = D.run ~trap_cache:false app defense in
          let label =
            Printf.sprintf "%s/%s" app.D.app_name (D.defense_name defense)
          in
          let hits =
            match on.D.m_monitor with
            | Some m ->
              let h, _, _ = Bastion.Monitor.cache_stats m in
              h
            | None -> 0
          in
          Alcotest.(check bool) (label ^ ": cache hits > 0") true (hits > 0);
          Alcotest.(check bool)
            (Printf.sprintf "%s: cache-on cycles strictly decrease (%d < %d)"
               label on.D.m_cycles off.D.m_cycles)
            true
            (on.D.m_cycles < off.D.m_cycles);
          (* The cache must not change what the monitor observes. *)
          Alcotest.(check int) (label ^ ": same traps") off.D.m_traps on.D.m_traps;
          Alcotest.(check int) (label ^ ": same syscalls") off.D.m_syscalls
            on.D.m_syscalls)
        [ D.Bastion_full; D.Bastion_fs Bastion.Monitor.Fs_full ])
    [ D.nginx (); D.sqlite (); D.vsftpd () ]

(* --- Table 6 must be byte-identical cache on/off ---------------------- *)

let render_rows rows =
  let mark = function
    | Attacks.Runner.Blocked _ -> "blocked"
    | Attacks.Runner.Succeeded -> "succeeded"
    | Attacks.Runner.Inert -> "inert"
  in
  String.concat "\n"
    (List.map
       (fun (r : Attacks.Runner.row) ->
         Printf.sprintf "%s undef=%s ct=%s cf=%s ai=%s full=%s match=%b"
           r.r_attack.Attacks.Attack.a_id (mark r.r_undefended) (mark r.r_ct)
           (mark r.r_cf) (mark r.r_ai) (mark r.r_full)
           (Attacks.Runner.matches_expectation r))
       rows)

let test_table6_invariant_under_cache () =
  let on = render_rows (Attacks.Runner.evaluate_all ~trap_cache:true ()) in
  let off = render_rows (Attacks.Runner.evaluate_all ~trap_cache:false ()) in
  Alcotest.(check string) "attack matrix byte-identical cache on/off" off on

(* --- bench JSON round-trip -------------------------------------------- *)

let json_eq = Alcotest.testable (Fmt.of_to_string Report.Json.to_string) ( = )

let test_json_roundtrip () =
  let open Report.Json in
  let doc =
    Obj
      [
        ("schema", Str "bastion-bench/1");
        ("empty_list", List []);
        ("empty_obj", Obj []);
        ("flag", Bool true);
        ("off", Bool false);
        ("nothing", Null);
        ("cycles", Num 136662881.0);
        ("rate", Num 0.984375);
        ("neg", Num (-42.0));
        ("text", Str "quote \" backslash \\ newline \n tab \t done");
        ( "results",
          List [ Obj [ ("app", Str "NGINX"); ("traps", Num 1136.0) ]; Null ] );
      ]
  in
  Alcotest.check json_eq "emit/parse roundtrip" doc (of_string (to_string doc));
  Alcotest.(check bool) "parse error raised on garbage" true
    (match of_string "{ \"a\": }" with
    | exception Report.Json.Parse_error _ -> true
    | _ -> false)

(* Random JSON documents (integer-valued numbers, printable strings)
   survive the emit/parse round trip. *)
let gen_json =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Report.Json.Null;
        map (fun b -> Report.Json.Bool b) bool;
        map (fun n -> Report.Json.Num (float_of_int n)) small_signed_int;
        map
          (fun s -> Report.Json.Str s)
          (string_size ~gen:(char_range '\032' '\126') (int_range 0 12));
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [
               (3, leaf);
               ( 1,
                 map (fun xs -> Report.Json.List xs)
                   (list_size (int_range 0 4) (self (n / 2))) );
               ( 1,
                 map (fun xs -> Report.Json.Obj xs)
                   (list_size (int_range 0 4)
                      (pair
                         (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
                         (self (n / 2)))) );
             ])

let prop_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"random JSON survives emit/parse"
    (QCheck.make gen_json)
    (fun doc ->
      Report.Json.of_string (Report.Json.to_string doc) = doc)

(* The checked-in bench artifact parses and carries the expected shape:
   the trap-cache ablation pairs with a strict cycle win. *)
let test_bench_artifact_parses () =
  let path = "../BENCH_trap_fastpath.json" in
  if not (Sys.file_exists path) then
    Alcotest.fail "BENCH_trap_fastpath.json missing (run bench/main.exe --json)";
  let doc = Report.Json.of_file path in
  let open Report.Json in
  (match member "schema" doc with
  | Some (Str "bastion-bench/1") -> ()
  | _ -> Alcotest.fail "bad or missing schema field");
  let results =
    match Option.bind (member "results" doc) to_list with
    | Some rs -> rs
    | None -> Alcotest.fail "missing results list"
  in
  Alcotest.(check bool) "has results" true (List.length results > 0);
  let cycles_of r = Option.bind (member "cycles" r) to_float in
  let keyed tc =
    List.filter_map
      (fun r ->
        match (member "app" r, member "defense" r, member "trap_cache" r) with
        | Some (Str app), Some (Str d), Some (Bool b) when b = tc ->
          Option.map (fun c -> ((app, d), c)) (cycles_of r)
        | _ -> None)
      results
  in
  let on = keyed true and off = keyed false in
  Alcotest.(check int) "ablation pairs complete" (List.length off) (List.length on);
  Alcotest.(check bool) "at least 6 ablation pairs" true (List.length on >= 6);
  List.iter
    (fun (k, c_on) ->
      match List.assoc_opt k off with
      | None -> Alcotest.fail "unpaired cache-on record"
      | Some c_off ->
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s: cache-on cycles < cache-off" (fst k) (snd k))
          true (c_on < c_off))
    on

let suites =
  [
    ( "fastpath-cache",
      [
        Alcotest.test_case "hit/miss accounting" `Quick test_cache_hit_miss;
        Alcotest.test_case "key chain sensitivity" `Quick test_cache_key_chain_sensitivity;
        Alcotest.test_case "epoch invalidation" `Quick test_cache_epoch_invalidation;
        QCheck_alcotest.to_alcotest prop_token_corruption_misses;
      ] );
    ( "fastpath-snapshot",
      [
        Alcotest.test_case "coalesced reads per trap" `Quick test_snapshot_coalesces_reads;
        Alcotest.test_case "cache wins on deep chain" `Quick test_cache_wins_on_chain;
        Alcotest.test_case "workload cycle decrease" `Slow test_workload_cache_cycle_decrease;
        Alcotest.test_case "Table 6 invariant under cache" `Slow
          test_table6_invariant_under_cache;
      ] );
    ( "fastpath-json",
      [
        Alcotest.test_case "handwritten roundtrip" `Quick test_json_roundtrip;
        QCheck_alcotest.to_alcotest prop_json_roundtrip;
        Alcotest.test_case "bench artifact parses" `Quick test_bench_artifact_parses;
      ] );
  ]
