(* Tests for the fleet telemetry plane: domain-safe metric shards and
   their merge laws (exactness, commutativity, associativity), the
   open-loop fleet engine's sharded-vs-serial equivalence, the
   saturation-knee detector, and the shape of the committed
   BENCH_fleet.json artifact. *)

module F = Workloads.Fleet
module M = Obs.Metrics
module J = Report.Json

(* --- domain-safe metric shards ---------------------------------------- *)

(* Four domains hammer their own shard registries concurrently; the
   merge at join must recover the exact serial totals — integer
   counters and histogram state make the merge exact, not approximate. *)
let test_shards_domain_stress () =
  let sh = M.Shards.create () in
  let domains = 4 and per_domain = 5_000 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let reg = M.Shards.my sh in
            let c = M.counter reg "stress.traps" in
            let h = M.histogram reg "stress.lat" in
            for i = 1 to per_domain do
              M.incr c;
              M.observe h ((d * per_domain) + i)
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "one registry per domain" domains
    (List.length (M.Shards.registries sh));
  let merged = M.Shards.merged sh in
  let total = domains * per_domain in
  Alcotest.(check (float 1e-9)) "counter total exact" (float_of_int total)
    (List.assoc "stress.traps" (M.counter_values merged));
  let s = M.summarize (M.histogram merged "stress.lat") in
  Alcotest.(check int) "every observation merged" total s.M.s_count;
  Alcotest.(check int) "global min survives" 1 s.M.s_min;
  Alcotest.(check int) "global max survives" total s.M.s_max;
  (* Σ 1..20000 = 200_010_000: the integer sum merges exactly. *)
  Alcotest.(check (float 1e-9)) "mean exact after merge"
    (float_of_int (total * (total + 1) / 2) /. float_of_int total)
    s.M.s_mean

(* --- merge laws (qcheck) ---------------------------------------------- *)

(* A registry is modelled by the op list that built it: each op bumps
   a named counter and observes the same value into a named histogram. *)
let apply_ops reg ops =
  List.iter
    (fun (i, v) ->
      let name = Printf.sprintf "m%d" i in
      M.add (M.counter reg ("c." ^ name)) v;
      M.observe (M.histogram reg ("h." ^ name)) v)
    ops

let registry_of ops =
  let reg = M.create () in
  apply_ops reg ops;
  reg

let ops_gen =
  QCheck.(list_of_size (Gen.int_range 0 60) (pair (int_bound 3) (int_bound 100_000)))

let prop_merge_matches_serial =
  QCheck.Test.make ~count:100 ~name:"merged shards = one serial registry"
    QCheck.(triple ops_gen ops_gen ops_gen)
    (fun (a, b, c) ->
      let merged = M.merge [ registry_of a; registry_of b; registry_of c ] in
      let serial = registry_of (a @ b @ c) in
      M.equal merged serial)

let prop_merge_commutative =
  QCheck.Test.make ~count:100 ~name:"merge is commutative"
    QCheck.(pair ops_gen ops_gen)
    (fun (a, b) ->
      M.equal
        (M.merge [ registry_of a; registry_of b ])
        (M.merge [ registry_of b; registry_of a ]))

let prop_merge_associative =
  QCheck.Test.make ~count:100 ~name:"merge is associative"
    QCheck.(triple ops_gen ops_gen ops_gen)
    (fun (a, b, c) ->
      let ra () = registry_of a and rb () = registry_of b and rc () = registry_of c in
      M.equal
        (M.merge [ M.merge [ ra (); rb () ]; rc () ])
        (M.merge [ ra (); M.merge [ rb (); rc () ] ]))

let prop_merge_identity =
  QCheck.Test.make ~count:100 ~name:"empty registry is the merge identity"
    ops_gen
    (fun a ->
      let reg = registry_of a in
      M.equal reg (M.merge [ registry_of a; M.create () ])
      && M.equal reg (M.merge [ M.create (); registry_of a ]))

(* --- the open-loop fleet engine --------------------------------------- *)

(* The real sharded pool at sub- and super-saturation load: the merged
   shard registries must equal the serial reference simulation exactly
   at every rate, and the latency summaries must be internally
   consistent. *)
let test_fleet_matches_serial () =
  let arrivals = 300 in
  let t = F.build ~tracees:8 ~shards:4 in
  let cap = F.capacity t ~arrivals in
  List.iter
    (fun fraction ->
      let r = F.run_at t ~arrivals ~rate:(fraction *. cap) in
      Alcotest.(check bool)
        (Printf.sprintf "merged = serial at %.2fx capacity" fraction)
        true r.F.rr_matches_serial;
      let s = M.summarize (M.histogram r.F.rr_merged "fleet.e2e") in
      Alcotest.(check int)
        (Printf.sprintf "every arrival observed at %.2fx" fraction)
        arrivals s.M.s_count;
      Alcotest.(check bool) "p50 <= p99 <= p99.9 <= max" true
        (s.M.s_p50 <= s.M.s_p99
        && s.M.s_p99 <= s.M.s_p999
        && s.M.s_p999 <= float_of_int s.M.s_max))
    [ 0.25; 0.9; 1.2 ]

(* Queue waits must grow with offered load: the tail at 1.2x capacity
   dominates the tail at a quarter of it. *)
let test_fleet_wait_grows_with_load () =
  let arrivals = 400 in
  let t = F.build ~tracees:8 ~shards:2 in
  let cap = F.capacity t ~arrivals in
  let wait f =
    let r = F.run_at t ~arrivals ~rate:(f *. cap) in
    (M.summarize (M.histogram r.F.rr_merged "fleet.queue_wait")).M.s_p99
  in
  let light = wait 0.25 and heavy = wait 1.2 in
  Alcotest.(check bool)
    (Printf.sprintf "p99 wait grows toward saturation (%.0f -> %.0f)" light heavy)
    true (heavy > light)

(* The phase decomposition: per-trap service = prefilter + snapshot +
   CT + CF + AI, so the merged phase histogram means must sum to the
   service mean. *)
let test_fleet_phase_decomposition () =
  let arrivals = 200 in
  let t = F.build ~tracees:6 ~shards:2 in
  let cap = F.capacity t ~arrivals in
  let r = F.run_at t ~arrivals ~rate:(0.5 *. cap) in
  let mean name = (M.summarize (M.histogram r.F.rr_merged name)).M.s_mean in
  let parts =
    List.fold_left ( +. ) 0.0
      (List.map
         (fun p -> mean (Printf.sprintf "fleet.phase.%s" p))
         [ "prefilter"; "snapshot"; "ct"; "cf"; "ai" ])
  in
  Alcotest.(check (float 1e-6)) "phase means sum to the service mean"
    (mean "fleet.service") parts

(* --- the knee detector ------------------------------------------------ *)

let knee = Alcotest.(option (pair int string))

let test_detect_knee () =
  (* Utilisation crossing 1.0 wins at the first saturated point. *)
  Alcotest.check knee "util knee"
    (Some (2, "bottleneck shard utilisation reached 1.0"))
    (F.detect_knee [ (0.2, 0.0, 100.0); (0.6, 50.0, 100.0); (1.05, 400.0, 100.0) ]);
  (* Tail blow-up before the analytic limit: baseline p99 10 is floored
     at the 100-cycle mean service, so the limit is 800. *)
  Alcotest.check knee "tail knee"
    (Some (2, "p99 queue wait exceeded 8x the lightest-load baseline"))
    (F.detect_knee [ (0.2, 10.0, 100.0); (0.5, 20.0, 100.0); (0.9, 5000.0, 100.0) ]);
  (* The service floor: a 700-cycle wait under an 800-cycle limit is
     bursting, not saturation, even though the baseline p99 was 0. *)
  Alcotest.check knee "no knee under the service floor" None
    (F.detect_knee [ (0.2, 0.0, 100.0); (0.5, 300.0, 100.0); (0.9, 700.0, 100.0) ]);
  Alcotest.check knee "empty sweep" None (F.detect_knee [])

(* --- the committed artifact ------------------------------------------- *)

let summary_floats name j =
  match J.member name j with
  | Some s -> (
    match (J.member "p50" s, J.member "p99" s, J.member "p999" s) with
    | Some (J.Num p50), Some (J.Num p99), Some (J.Num p999) -> (p50, p99, p999)
    | _ -> Alcotest.fail (Printf.sprintf "summary %s missing percentiles" name))
  | None -> Alcotest.fail (Printf.sprintf "missing summary %s" name)

let num name j =
  match J.member name j with
  | Some (J.Num f) -> f
  | _ -> Alcotest.fail (Printf.sprintf "missing numeric field %s" name)

let test_bench_fleet_artifact () =
  let path = "../BENCH_fleet.json" in
  if not (Sys.file_exists path) then
    Alcotest.fail "BENCH_fleet.json missing (run bench/main.exe --json-fleet)";
  let doc = J.of_file path in
  (match J.member "schema" doc with
  | Some (J.Str "bastion-fleet/2") -> ()
  | _ -> Alcotest.fail "bad or missing schema field");
  let config = Option.get (J.member "config" doc) in
  let cfg name = int_of_float (num name config) in
  Alcotest.(check bool) "fleet of at least 64 tracees" true (cfg "tracees" >= 64);
  Alcotest.(check bool) "at least 4 shards" true (cfg "shards" >= 4);
  Alcotest.(check bool) "positive capacity" true
    (num "capacity_traps_per_sec" doc > 0.0);
  Alcotest.(check bool) "static bottleneck below the ideal aggregate" true
    (num "capacity_bottleneck_traps_per_sec" doc
    < num "capacity_traps_per_sec" doc);
  let policies =
    match Option.bind (J.member "policies" doc) J.to_list with
    | Some ps -> ps
    | None -> Alcotest.fail "missing policies list"
  in
  let arm name =
    match
      List.find_opt
        (fun p -> J.member "policy" p = Some (J.Str name))
        policies
    with
    | Some p -> p
    | None -> Alcotest.fail (Printf.sprintf "missing %s policy arm" name)
  in
  let results p =
    match Option.bind (J.member "results" p) J.to_list with
    | Some rs -> rs
    | None -> Alcotest.fail "policy arm missing results list"
  in
  List.iter
    (fun p ->
      let rs = results p in
      Alcotest.(check bool) "at least 5 load points" true (List.length rs >= 5);
      let loads = List.map (num "offered_traps_per_sec") rs in
      Alcotest.(check bool) "offered loads strictly increase" true
        (List.for_all2 (fun a b -> a < b) loads (List.tl loads @ [ infinity ]));
      List.iter
        (fun r ->
          (match J.member "matches_serial" r with
          | Some (J.Bool true) -> ()
          | _ -> Alcotest.fail "point diverged from the serial reference");
          List.iter
            (fun name ->
              let p50, p99, p999 = summary_floats name r in
              Alcotest.(check bool)
                (Printf.sprintf "%s tail ordering p50 <= p99 <= p99.9" name)
                true
                (p50 <= p99 && p99 <= p999))
            [ "queue_wait"; "e2e"; "service" ];
          Alcotest.(check bool) "spread is at least level" true
            (num "util_spread" r >= 1.0))
        rs;
      match J.member "knee" p with
      | Some (J.Obj _ as k) -> (
        match (J.member "index" k, J.member "reason" k) with
        | Some (J.Num i), Some (J.Str _) ->
          Alcotest.(check bool) "knee index inside the sweep" true
            (int_of_float i >= 0 && int_of_float i < List.length rs)
        | _ -> Alcotest.fail "knee missing index/reason")
      | _ -> Alcotest.fail "every policy arm must detect a knee")
    policies;
  (* The headline: both balancing arms move the knee to a strictly
     higher load fraction than static pinning, stealing actually
     fires, and the utilisation spread is lower at every shared
     sub-saturation point. *)
  let static = arm "static" in
  let knee_load p = num "load_fraction" (Option.get (J.member "knee" p)) in
  List.iter
    (fun name ->
      let p = arm name in
      Alcotest.(check bool)
        (Printf.sprintf "%s knee beyond the static knee" name)
        true
        (knee_load p > knee_load static);
      List.iter2
        (fun rs rb ->
          if num "util_max" rb < 1.0 then
            Alcotest.(check bool)
              (Printf.sprintf "%s spread below static at %.2fx" name
                 (num "load_fraction" rb))
              true
              (num "util_spread" rb < num "util_spread" rs))
        (results static) (results p))
    [ "least-loaded"; "steal" ];
  Alcotest.(check bool) "the steal arm stole" true
    (List.exists (fun r -> num "steals" r > 0.0) (results (arm "steal")));
  Alcotest.(check bool) "the static arm never steals" true
    (List.for_all (fun r -> num "steals" r = 0.0) (results static))

(* A small three-policy ablation end to end: shared capacity yardstick,
   per-arm knees, serial equivalence everywhere, and the JSON document
   round-trips with the v2 schema. *)
let test_fleet_ablation_small () =
  let a = F.ablation ~tracees:8 ~shards:4 ~arrivals:200 ~points:3 () in
  Alcotest.(check int) "three arms" 3 (List.length a.F.ab_sweeps);
  List.iter
    (fun (s : F.sweep) ->
      Alcotest.(check (float 1e-9)) "shared capacity" a.F.ab_capacity
        s.F.sw_capacity;
      List.iter
        (fun (p : F.point) ->
          Alcotest.(check bool) "matches serial" true
            p.F.pt_result.F.rr_matches_serial)
        s.F.sw_points)
    a.F.ab_sweeps;
  match J.member "schema" (F.ablation_json a) with
  | Some (J.Str "bastion-fleet/2") -> ()
  | _ -> Alcotest.fail "ablation_json must carry the v2 schema"

let suites =
  [
    ( "fleet-shards",
      [
        Alcotest.test_case "4-domain stress merges exactly" `Quick
          test_shards_domain_stress;
        QCheck_alcotest.to_alcotest prop_merge_matches_serial;
        QCheck_alcotest.to_alcotest prop_merge_commutative;
        QCheck_alcotest.to_alcotest prop_merge_associative;
        QCheck_alcotest.to_alcotest prop_merge_identity;
      ] );
    ( "fleet-engine",
      [
        Alcotest.test_case "sharded run matches serial reference" `Quick
          test_fleet_matches_serial;
        Alcotest.test_case "queue wait grows with offered load" `Quick
          test_fleet_wait_grows_with_load;
        Alcotest.test_case "phase means sum to service mean" `Quick
          test_fleet_phase_decomposition;
        Alcotest.test_case "knee detector" `Quick test_detect_knee;
      ] );
    ( "fleet-artifact",
      [
        Alcotest.test_case "BENCH_fleet.json shape" `Quick
          test_bench_fleet_artifact;
        Alcotest.test_case "small three-policy ablation" `Quick
          test_fleet_ablation_small;
      ] );
  ]
