(* The static soundness suite: CFG/dominator helpers, the generic
   dataflow engine, reaching definitions, interprocedural constant
   propagation, the metadata-soundness linter (clean on every workload
   model, and catching each seeded fault with the right diagnostic
   kind), and the constant-argument pre-resolution fast path. *)

module B = Sil.Builder
module Cfg = Sil.Cfg
module Lint = Bastion_analysis.Lint
module Cp = Bastion_analysis.Constprop
module Rd = Bastion_analysis.Reaching_defs
module Pre = Bastion_analysis.Preresolve

(* A diamond with a dead block:

     entry: y=0; branch x then else
     then:  y=1 -> join
     else:  y=2 -> join
     join:  z=y; ret z
     dead:  w=9 -> join          (unreachable)                        *)
let diamond () =
  let pb = B.program () in
  let fb = B.func pb "main" ~params:[ ("x", Sil.Types.I64) ] in
  let x = B.param fb 0 in
  let y = B.local fb "y" Sil.Types.I64 in
  let z = B.local fb "z" Sil.Types.I64 in
  let w = B.local fb "w" Sil.Types.I64 in
  B.set fb y (Sil.Operand.const 0);
  B.branch fb (Sil.Operand.Var x) "then" "else";
  B.block fb "then";
  B.set fb y (Sil.Operand.const 1);
  B.jump fb "join";
  B.block fb "else";
  B.set fb y (Sil.Operand.const 2);
  B.jump fb "join";
  B.block fb "join";
  B.set fb z (Sil.Operand.Var y);
  B.ret fb (Some (Sil.Operand.Var z));
  B.block fb "dead";
  B.set fb w (Sil.Operand.const 9);
  B.jump fb "join";
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  (Sil.Prog.find_func prog "main", y)

(* --- CFG helpers --------------------------------------------------- *)

let test_cfg_reachability () =
  let f, _ = diamond () in
  let reach = Cfg.reachable_blocks f in
  Alcotest.(check bool) "entry reachable" true (Cfg.Sset.mem "entry" reach);
  Alcotest.(check bool) "join reachable" true (Cfg.Sset.mem "join" reach);
  Alcotest.(check bool) "dead unreachable" false (Cfg.Sset.mem "dead" reach);
  let rpo = Cfg.reverse_postorder f in
  Alcotest.(check int) "rpo covers reachable blocks" 4 (List.length rpo);
  Alcotest.(check string) "rpo starts at entry" "entry" (List.hd rpo);
  (* The builder may append anonymous fallthrough blocks; the named
     predecessors must all be present. *)
  let preds =
    Option.value ~default:[] (Hashtbl.find_opt (Cfg.predecessors f) "join")
  in
  List.iter
    (fun p ->
      Alcotest.(check bool) ("join pred " ^ p) true (List.mem p preds))
    [ "then"; "else"; "dead" ]

let test_cfg_dominators () =
  let f, _ = diamond () in
  let doms = Cfg.dominators f in
  Alcotest.(check bool) "entry dominates join" true (Cfg.dominates doms "entry" "join");
  Alcotest.(check bool) "then does not dominate join" false
    (Cfg.dominates doms "then" "join");
  Alcotest.(check bool) "join dominates itself" true (Cfg.dominates doms "join" "join");
  Alcotest.(check bool) "unreachable blocks have no dominator entry" true
    (Hashtbl.find_opt doms "dead" = None)

let test_cfg_successors () =
  Alcotest.(check (list string)) "jump" [ "a" ] (Cfg.successors (Sil.Instr.Jump "a"));
  Alcotest.(check (list string)) "branch" [ "a"; "b" ]
    (Cfg.successors (Sil.Instr.Branch (Sil.Operand.Null, "a", "b")));
  Alcotest.(check (list string)) "degenerate branch dedups" [ "a" ]
    (Cfg.successors (Sil.Instr.Branch (Sil.Operand.Null, "a", "a")));
  Alcotest.(check (list string)) "ret" [] (Cfg.successors (Sil.Instr.Ret None))

(* --- the dataflow engine: backward liveness ------------------------ *)

module Live = Bastion_analysis.Liveness
module SS = Live.SS

let test_backward_liveness () =
  let f, _ = diamond () in
  let r = Live.compute f in
  (* join reads y, so y is live into join and out of then/else... *)
  Alcotest.(check bool) "y live into join" true (SS.mem "y" (Live.live_in r "join"));
  (* ...but then/else redefine y, killing it on entry. *)
  Alcotest.(check bool) "y dead into then" false (SS.mem "y" (Live.live_in r "then"));
  (* entry defines y before the branch; nothing upstream needs it. *)
  Alcotest.(check bool) "y dead into entry" false (SS.mem "y" (Live.live_in r "entry"));
  (* the before-point inside join, past the read of y, has y dead *)
  Alcotest.(check bool) "y dead after its last read" false
    (SS.mem "y" (Live.live_before r (Sil.Loc.make "main" "join" 1)))

let test_liveness_terminator_uses () =
  let f, _ = diamond () in
  let r = Live.compute f in
  (* The branch condition x is a use carried by entry's terminator
     alone: live into the block and right before the terminator, but
     not *out* of it — live_out is the successors' join, and no
     successor reads x. *)
  Alcotest.(check bool) "x live into entry" true
    (SS.mem "x" (Live.live_in r "entry"));
  Alcotest.(check bool) "x live just before entry's terminator" true
    (SS.mem "x" (Live.live_before r (Sil.Loc.make "main" "entry" 1)));
  Alcotest.(check bool) "x not live out of entry" false
    (SS.mem "x" (Live.live_out r "entry"));
  (* x is never used past the branch. *)
  Alcotest.(check bool) "x dead into join" false
    (SS.mem "x" (Live.live_in r "join"));
  (* The ret operand z is a use carried by join's terminator: live
     after join's last instruction (the def of z). *)
  Alcotest.(check bool) "z live after its def" true
    (SS.mem "z" (Live.live_after r (Sil.Loc.make "main" "join" 0)));
  Alcotest.(check bool) "ret uses z" true
    (SS.mem "z"
       (Live.term_uses
          (Sil.Instr.Ret (Some (Sil.Operand.Var { Sil.Operand.vid = 0; vname = "z" })))))

let test_liveness_dead_stores () =
  let f, _ = diamond () in
  let r = Live.compute f in
  (* Two genuine dead stores: entry's y=0 is clobbered on both paths
     before join reads y, and the dead block's w is never read (the
     backward analysis does reach `dead` — it jumps to join, so it can
     reach an exit). *)
  let dead = Live.dead_stores r in
  Alcotest.(check int) "diamond has two dead stores" 2 (List.length dead);
  Alcotest.(check bool) "entry's clobbered def is dead" true
    (List.exists
       (fun (l : Sil.Loc.t) -> l.block = "entry" && l.index = 0)
       dead);
  Alcotest.(check bool) "the dead block's unread def is dead" true
    (List.exists (fun (l : Sil.Loc.t) -> l.block = "dead") dead);
  (* A straight-line function where the first def of y is clobbered
     before any read. *)
  let pb = B.program () in
  let fb = B.func pb "f" ~params:[] in
  let y = B.local fb "y" Sil.Types.I64 in
  B.set fb y (Sil.Operand.const 1);
  B.set fb y (Sil.Operand.const 2);
  B.ret fb (Some (Sil.Operand.Var y));
  B.seal fb;
  let prog = B.build pb ~entry:"f" in
  let g = Sil.Prog.find_func prog "f" in
  let dead = Live.dead_stores (Live.compute g) in
  Alcotest.(check int) "clobbered def is a dead store" 1 (List.length dead);
  Alcotest.(check int) "the first set is the dead one" 0
    (List.hd dead).Sil.Loc.index

(* --- reaching definitions ------------------------------------------ *)

let test_reaching_defs () =
  let f, y = diamond () in
  let rd = Rd.compute f in
  (* Before the read of y in join: the defs from then and else, and
     nothing else (the entry def is killed on both paths). *)
  let at_join = Rd.reaching rd (Sil.Loc.make "main" "join" 0) y in
  Alcotest.(check int) "two defs reach join" 2 (Sil.Loc.Set.cardinal at_join);
  Alcotest.(check bool) "then def reaches" true
    (Sil.Loc.Set.mem (Sil.Loc.make "main" "then" 0) at_join);
  Alcotest.(check bool) "else def reaches" true
    (Sil.Loc.Set.mem (Sil.Loc.make "main" "else" 0) at_join);
  Alcotest.(check bool) "no entry pseudo-def at join" false
    (Sil.Loc.Set.exists Rd.is_entry_def at_join);
  (* Before the first instruction of entry: only the pseudo-def. *)
  let at_entry = Rd.reaching rd (Sil.Loc.make "main" "entry" 0) y in
  Alcotest.(check bool) "entry pseudo-def before first def" true
    (Sil.Loc.Set.equal at_entry (Sil.Loc.Set.singleton (Rd.entry_def f y)));
  (* Unreachable point: empty set. *)
  Alcotest.(check bool) "unreachable point is empty" true
    (Sil.Loc.Set.is_empty (Rd.reaching rd (Sil.Loc.make "main" "dead" 0) y))

(* --- constant propagation ------------------------------------------ *)

(* Branch on a known condition, a frozen and a mutated global, an
   address-taken local, and constant folding. *)
let constprop_prog () =
  let pb = B.program () in
  B.global pb "gfroz" Sil.Types.I64 (Sil.Prog.Word 7L);
  B.global pb "gmut" Sil.Types.I64 (Sil.Prog.Word 1L);
  let fb = B.func pb "main" ~params:[] in
  let c = B.local fb "c" Sil.Types.I64 in
  let x = B.local fb "x" Sil.Types.I64 in
  let g = B.local fb "g" Sil.Types.I64 in
  let a = B.local fb "a" Sil.Types.I64 in
  let pa = B.local fb "pa" (Sil.Types.Ptr Sil.Types.I64) in
  let y = B.local fb "y" Sil.Types.I64 in
  B.set fb c (Sil.Operand.const 1);
  B.store fb (Sil.Place.Lglobal "gmut") (Sil.Operand.const 5);
  B.branch fb (Sil.Operand.Var c) "then" "else";
  B.block fb "then";
  B.set fb x (Sil.Operand.const 1);
  B.jump fb "join";
  B.block fb "else";
  B.set fb x (Sil.Operand.const 2);
  B.jump fb "join";
  B.block fb "join";
  B.set fb g (Sil.Operand.Global "gfroz");
  B.set fb a (Sil.Operand.const 3);
  B.addr_of fb pa (Sil.Place.Lvar a);
  B.binop fb y Sil.Instr.Add (Sil.Operand.Var x) (Sil.Operand.const 10);
  B.halt fb;
  B.seal fb;
  (B.build pb ~entry:"main", x, c, g, a, y)

let check_value msg expect got =
  Alcotest.(check string) msg
    (Format.asprintf "%a" Cp.pp_value expect)
    (Format.asprintf "%a" Cp.pp_value got)

let test_constprop_branch_folding () =
  let prog, x, c, _, _, _ = constprop_prog () in
  let cp = Cp.analyze prog in
  let at_join i op = Cp.value_of_operand cp (Sil.Loc.make "main" "join" i) op in
  check_value "condition constant" (Cp.Known 1L) (at_join 0 (Sil.Operand.Var c));
  (* The else edge folds away, so x is the then-value, not a join. *)
  check_value "x folded to the taken branch" (Cp.Known 1L)
    (at_join 0 (Sil.Operand.Var x));
  check_value "folded-away block is unreached (Top)" Cp.Top
    (Cp.value_of_operand cp (Sil.Loc.make "main" "else" 0) (Sil.Operand.Var c))

let test_constprop_globals_and_addr_taken () =
  let prog, _, _, g, a, y = constprop_prog () in
  let cp = Cp.analyze prog in
  Alcotest.(check (option int64)) "frozen global" (Some 7L) (Cp.frozen_global cp "gfroz");
  Alcotest.(check (option int64)) "stored-to global not frozen" None
    (Cp.frozen_global cp "gmut");
  let at_end op = Cp.value_of_operand cp (Sil.Loc.make "main" "join" 4) op in
  check_value "load of frozen global" (Cp.Known 7L) (at_end (Sil.Operand.Var g));
  check_value "address-taken local pinned to Top" Cp.Top (at_end (Sil.Operand.Var a));
  check_value "constant folding through Binop" (Cp.Known 11L)
    (at_end (Sil.Operand.Var y))

let test_constprop_interprocedural () =
  (* helper is always called with 5 -> its parameter summary is Known 5
     and the body folds; helper2 sees two different constants -> Top. *)
  let pb = B.program () in
  let fb = B.func pb "helper" ~params:[ ("a", Sil.Types.I64) ] in
  let hb = B.local fb "b" Sil.Types.I64 in
  B.binop fb hb Sil.Instr.Add (Sil.Operand.Var (B.param fb 0)) (Sil.Operand.const 1);
  B.ret fb (Some (Sil.Operand.Var hb));
  B.seal fb;
  let fb = B.func pb "helper2" ~params:[ ("a", Sil.Types.I64) ] in
  B.ret fb (Some (Sil.Operand.Var (B.param fb 0)));
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  let r = B.local fb "r" Sil.Types.I64 in
  B.call fb ~dst:r "helper" [ Sil.Operand.const 5 ];
  B.call fb ~dst:r "helper" [ Sil.Operand.const 5 ];
  B.call fb ~dst:r "helper2" [ Sil.Operand.const 1 ];
  B.call fb ~dst:r "helper2" [ Sil.Operand.const 2 ];
  B.halt fb;
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  let cp = Cp.analyze prog in
  Alcotest.(check bool) "helper reached" true (Cp.reached cp "helper");
  (match Cp.summary cp "helper" with
  | Some [| v |] -> check_value "helper summary" (Cp.Known 5L) v
  | _ -> Alcotest.fail "expected a 1-slot summary for helper");
  (match Cp.summary cp "helper2" with
  | Some [| v |] -> check_value "helper2 summary joins to Top" Cp.Top v
  | _ -> Alcotest.fail "expected a 1-slot summary for helper2");
  (* The constant parameter folds inside the callee's body: just before
     the return point, b = a + 1 = 6. *)
  let fh = Sil.Prog.find_func prog "helper" in
  let entry = (Sil.Func.entry_block fh).label in
  check_value "callee body folds the summary" (Cp.Known 6L)
    (Cp.value_of_operand cp (Sil.Loc.make "helper" entry 1) (Sil.Operand.Var hb))

(* --- Sil.Validate error paths -------------------------------------- *)

let test_validate_dangling_block () =
  let pb = B.program () in
  let fb = B.func pb "main" ~params:[] in
  B.terminate fb (Sil.Instr.Jump "nowhere");
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  let errors = Sil.Validate.check prog in
  Alcotest.(check bool) "dangling label reported" true
    (List.exists
       (fun (e : Sil.Validate.error) ->
         Astring.String.is_infix ~affix:"nowhere" e.message)
       errors)

let test_validate_aggregate_as_scalar () =
  let pb = B.program () in
  B.struct_ pb "pair" [ ("a", Sil.Types.I64); ("b", Sil.Types.I64) ];
  let fb = B.func pb "main" ~params:[] in
  let s = B.local fb "s" (Sil.Types.Struct "pair") in
  let x = B.local fb "x" Sil.Types.I64 in
  B.set fb x (Sil.Operand.Var s);
  B.halt fb;
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  let errors = Sil.Validate.check prog in
  Alcotest.(check bool) "aggregate-as-scalar reported" true
    (List.exists
       (fun (e : Sil.Validate.error) ->
         Astring.String.is_infix ~affix:"aggregate" e.message)
       errors)

let test_validate_duplicate_function () =
  let pb = B.program () in
  let fb = B.func pb "dup" ~params:[] in
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  B.halt fb;
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  Alcotest.(check int) "well-formed before shadowing" 0
    (List.length (Sil.Validate.check prog));
  (* The function table tolerates shadowed bindings; the validator must
     not. *)
  Hashtbl.add prog.funcs "dup" (Sil.Prog.find_func prog "dup");
  let errors = Sil.Validate.check prog in
  Alcotest.(check bool) "duplicate name reported" true
    (List.exists
       (fun (e : Sil.Validate.error) ->
         Astring.String.is_infix ~affix:"more than once" e.message)
       errors)

let test_validate_unknown_call_dst () =
  let pb = B.program () in
  let fb = B.func pb "callee" ~params:[] in
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  B.emit fb
    (Sil.Instr.Call
       {
         dst = Some { Sil.Operand.vid = 9999; vname = "ghost" };
         target = Sil.Instr.Direct "callee";
         args = [];
       });
  B.halt fb;
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  let errors = Sil.Validate.check prog in
  Alcotest.(check bool) "unknown call destination reported" true
    (List.exists
       (fun (e : Sil.Validate.error) ->
         Astring.String.is_infix ~affix:"unknown variable" e.message)
       errors)

(* --- the linter: clean programs ------------------------------------ *)

let kinds diags = List.map (fun (d : Lint.diag) -> d.d_kind) diags

(* Clean = no error-severity diagnostics; warnings (dead-sensitive-store
   hygiene) are allowed on real models. *)
let check_clean name p =
  match Lint.errors (Lint.check p) with
  | [] -> ()
  | errs ->
    Alcotest.failf "%s: expected clean, got %d errors, first: %s" name
      (List.length errs)
      (Format.asprintf "%a" Lint.pp_diag (List.hd errs))

let test_models_lint_clean () =
  List.iter
    (fun (name, app) ->
      let p = Workloads.Drivers.protected_of app ~fs:false in
      check_clean name p;
      check_clean (name ^ "+preresolve")
        (Workloads.Drivers.protected_of ~pre_resolve:true app ~fs:false))
    [
      ("nginx", Workloads.Drivers.nginx ());
      ("sqlite", Workloads.Drivers.sqlite ());
      ("vsftpd", Workloads.Drivers.vsftpd ());
    ]

let test_fixture_lints_clean () =
  check_clean "exec_program" (Bastion.Api.protect (Testlib.exec_program ()));
  check_clean "exec_program+fs"
    (Bastion.Api.protect ~protect_filesystem:true (Testlib.exec_program ()))

(* --- the linter: seeded faults ------------------------------------- *)

let model_progs =
  [
    ("nginx", fun () -> Workloads.Nginx_model.build Workloads.Nginx_model.default);
    ("sqlite", fun () -> Workloads.Sqlite_model.build Workloads.Sqlite_model.default);
    ("vsftpd", fun () -> Workloads.Vsftpd_model.build Workloads.Vsftpd_model.default);
  ]

let is_write_mem_call (ins : Sil.Instr.t) =
  match ins with
  | Call { target = Direct callee; _ } ->
    String.equal callee Bastion.Instrument.write_mem_name
  | _ -> false

(* Replace the pair's ctx_write_mem call with a same-shape no-op so
   instruction indices (and so every Loc) stay stable. *)
let neuter_pair_call (b : Sil.Func.block) i =
  match b.instrs.(i) with
  | Sil.Instr.Assign (tmp, Sil.Instr.Addr_of _) when is_write_mem_call b.instrs.(i + 1)
    ->
    b.instrs.(i + 1) <- Sil.Instr.Assign (tmp, Sil.Instr.Use (Sil.Operand.Var tmp));
    true
  | _ -> false

let mutate_and_lint name mutate =
  List.concat_map
    (fun (mname, build) ->
      let p = Bastion.Api.protect (build ()) in
      mutate p;
      List.map (fun k -> (mname, k)) (kinds (Lint.check p)))
    model_progs
  |> fun all ->
  List.iter
    (fun (mname, _) ->
      if not (List.exists (fun (m, k) -> m = mname && k = name) all) then
        Alcotest.failf "%s: seeded fault not flagged as %s" mname
          (Lint.kind_name name))
    (List.map (fun (m, _) -> (m, ())) model_progs)

(* Drop one ctx_write_mem after a definition (not an entry-sync pair):
   the shadow for that variable goes stale -> Uncovered_def. *)
let drop_post_def_write_mem (p : Bastion.Api.protected) =
  let dropped = ref false in
  List.iter
    (fun (f : Sil.Func.t) ->
      match f.kind with
      | Sil.Func.App_code ->
        List.iter
          (fun (b : Sil.Func.block) ->
            if not !dropped then
              Array.iteri
                (fun i ins ->
                  if (not !dropped) && i + 2 < Array.length b.instrs then
                    match (ins : Sil.Instr.t) with
                    (* a def whose pair follows at i+1/i+2 *)
                    | Assign (v, _) | Call { dst = Some v; _ }
                      when Bastion.Arg_analysis.is_sensitive_local p.analysis
                             f.fname v ->
                      if neuter_pair_call b (i + 1) then dropped := true
                    | Store _ ->
                      if
                        (not (is_write_mem_call ins))
                        && neuter_pair_call b (i + 1)
                      then dropped := true
                    | _ -> ())
                b.instrs)
          f.blocks
      | _ -> ())
    (Sil.Prog.functions p.inst.iprog);
  if not !dropped then Alcotest.fail "no post-def ctx_write_mem pair found to drop"

let test_mutation_uncovered_def () =
  mutate_and_lint Lint.Uncovered_def drop_post_def_write_mem

(* Drop every entry-sync ctx_write_mem of one sensitive local. *)
let drop_entry_sync (p : Bastion.Api.protected) =
  let dropped = ref false in
  List.iter
    (fun (f : Sil.Func.t) ->
      if (not !dropped) && f.kind = Sil.Func.App_code then
        match Bastion.Arg_analysis.sensitive_locals_of p.analysis f.fname with
        | [] -> ()
        | v :: _ ->
          let fi = Sil.Prog.find_func p.inst.iprog f.fname in
          let entry = Sil.Func.entry_block fi in
          Array.iteri
            (fun i ins ->
              match (ins : Sil.Instr.t) with
              | Assign (_, Addr_of (Lvar v')) when v'.vid = v.Sil.Operand.vid ->
                if neuter_pair_call entry i then dropped := true
              | _ -> ())
            entry.instrs)
    (Sil.Prog.functions p.original);
  if not !dropped then Alcotest.fail "no entry-sync pair found to drop"

let test_mutation_missing_entry_sync () =
  mutate_and_lint Lint.Missing_entry_sync drop_entry_sync

(* Drop a CF edge: remove the valid-caller set of a function containing
   a sensitive callsite (not the entry function, not an indirect
   target), severing every chain up from it. *)
let drop_cf_edge (p : Bastion.Api.protected) =
  let candidate =
    Sil.Loc.Set.fold
      (fun (loc : Sil.Loc.t) acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if
            (not (String.equal loc.func p.inst.iprog.entry))
            && not (Bastion.Calltype.is_indirect_target p.calltype loc.func)
          then Some loc.func
          else None)
      p.cfg.sensitive_callsites None
  in
  match candidate with
  | Some fname -> Hashtbl.remove p.cfg.valid_callers fname
  | None -> Alcotest.fail "no severable sensitive callsite found"

let test_mutation_broken_cf_chain () =
  mutate_and_lint Lint.Broken_cf_chain drop_cf_edge

(* Misclassify an address-taken function as not (indirectly) callable. *)
let misclassify_address_taken (p : Bastion.Api.protected) =
  let icg = Sil.Callgraph.build p.inst.iprog in
  match Sil.Callgraph.Sset.choose_opt icg.address_taken with
  | Some fname -> Hashtbl.remove p.calltype.indirect_targets fname
  | None -> Alcotest.fail "model has no address-taken function"

let test_mutation_not_callable_misclass () =
  mutate_and_lint Lint.Not_callable_misclass misclassify_address_taken

(* A stale stored pre-resolution constant must be flagged. *)
(* --- the linter: metadata section tables ---------------------------- *)

(* A freshly written v3 file and its v2 rendering both validate clean;
   the parser's forward-compatible leniency (unknown optional sections)
   stays clean too. *)
let test_section_table_clean () =
  let p = Bastion.Api.protect (Testlib.exec_program ()) in
  let text = Bastion.Metadata_io.write p in
  Alcotest.(check int) "v3 write validates clean" 0
    (List.length (Lint.check_metadata_text text));
  let v2 =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
        if String.equal l Bastion.Metadata_io.header then
          Some Bastion.Metadata_io.header_v2
        else if String.starts_with ~prefix:"section " l then None
        else Some l)
    |> String.concat "\n"
  in
  Alcotest.(check int) "v2 files carry no table to validate" 0
    (List.length (Lint.check_metadata_text v2));
  let with_future =
    match String.split_on_char '\n' text with
    | hdr :: rest ->
      String.concat "\n"
        (hdr :: "section zfuture 1 optional" :: "future-record 0" :: rest)
    | [] -> assert false
  in
  Alcotest.(check int) "unknown optional section is fine" 0
    (List.length (Lint.check_metadata_text with_future))

(* Each deployment-soundness violation the parser deliberately does not
   enforce: wrong flag on a known section (both directions), duplicate
   sections, missing required section — plus a parse failure folding
   into one positioned diagnostic. *)
let test_section_table_violations () =
  let p = Bastion.Api.protect (Testlib.exec_program ()) in
  let text = Bastion.Metadata_io.write p in
  let expect_msgs label f msgs =
    let ds = Lint.check_metadata_text (f text) in
    List.iter
      (fun (d : Lint.diag) ->
        Alcotest.(check bool) (label ^ ": error severity") true
          (d.d_sev = Lint.Error);
        Alcotest.(check string) (label ^ ": kind") "malformed-section-table"
          (Lint.kind_name d.d_kind))
      ds;
    List.iter
      (fun m ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: a diagnostic mentions %S" label m)
          true
          (List.exists
             (fun (d : Lint.diag) -> Astring.String.is_infix ~affix:m d.d_msg)
             ds))
      msgs
  in
  expect_msgs "required section renamed away"
    (Str.replace_first
       (Str.regexp "section cfg \\([0-9]+\\) required")
       "section cfg-renamed \\1 optional")
    [ "missing required section \"cfg\"" ];
  expect_msgs "soundness section flagged optional"
    (fun t ->
      Str.replace_first (Str.regexp "section cfg \\([0-9]+\\) required")
        "section cfg \\1 optional" t)
    [ "must be flagged required" ];
  expect_msgs "optional section flagged required"
    (fun t ->
      Str.replace_first (Str.regexp "section static \\([0-9]+\\) optional")
        "section static \\1 required" t)
    [ "must be flagged optional" ];
  expect_msgs "duplicated section"
    (fun t ->
      t ^ "section static 0 optional\n")
    [ "duplicate section \"static\"" ];
  (* A file that does not parse folds into one positioned diagnostic. *)
  match Lint.check_metadata_text "BASTION-METADATA v3\ncalltype 59 d" with
  | [ d ] ->
    Alcotest.(check bool) "positioned" true
      (Astring.String.is_infix ~affix:"line 2" d.d_msg);
    Alcotest.(check bool) "carries the parser message" true
      (Astring.String.is_infix ~affix:"record outside any section" d.d_msg)
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let test_mutation_stale_pre_resolution () =
  let app = Workloads.Drivers.nginx () in
  let p = Pre.enrich (Bastion.Api.protect (Lazy.force app.prog)) in
  Alcotest.(check bool) "nginx has pre-resolved slots" true
    (Hashtbl.length p.pre_resolved > 0);
  let id, slots =
    Hashtbl.fold (fun id l _ -> (id, l)) p.pre_resolved (-1, [])
  in
  (match slots with
  | (pos, c) :: rest ->
    Hashtbl.replace p.pre_resolved id ((pos, Int64.add c 1L) :: rest)
  | [] -> Alcotest.fail "empty pre-resolved slot list");
  Alcotest.(check bool) "stale constant flagged" true
    (List.mem Lint.Stale_pre_resolution (kinds (Lint.check p)))

(* --- pre-resolution: priced win and attack invariance --------------- *)

let test_pre_resolution_cycle_win () =
  let app = Workloads.Drivers.nginx () in
  let off = Workloads.Drivers.run app Workloads.Drivers.Bastion_full in
  let on =
    Workloads.Drivers.run ~pre_resolve:true app Workloads.Drivers.Bastion_full
  in
  Alcotest.(check bool) "monitored cycles shrink" true (on.m_cycles < off.m_cycles);
  Alcotest.(check int) "same traps" off.m_traps on.m_traps;
  Alcotest.(check int) "same syscalls" off.m_syscalls on.m_syscalls;
  (match on.m_monitor with
  | Some m ->
    Alcotest.(check bool) "static AI verifications happened" true
      (Bastion.Monitor.pre_resolved_hits m > 0)
  | None -> Alcotest.fail "monitored run lost its monitor");
  match off.m_monitor with
  | Some m ->
    Alcotest.(check int) "no static verifications without pre-resolution" 0
      (Bastion.Monitor.pre_resolved_hits m)
  | None -> Alcotest.fail "monitored run lost its monitor"

(* The matrix compares WHAT blocked (context attribution), not the
   denial's free-text detail: when pre-resolution catches a corrupted
   argument it reports the argument slot where the shadow path reports
   the corrupted variable — same verdict, same context, different
   sentence. *)
let outcome_sig (o : Attacks.Runner.outcome) =
  match o with
  | Attacks.Runner.Succeeded -> "succeeded"
  | Attacks.Runner.Inert -> "inert"
  | Attacks.Runner.Blocked (Machine.Monitor_kill { context; _ }) ->
    "blocked:monitor:" ^ context
  | Attacks.Runner.Blocked f -> "blocked:" ^ Machine.fault_to_string f

let row_sig (r : Attacks.Runner.row) =
  ( r.r_attack.a_id,
    outcome_sig r.r_undefended,
    outcome_sig r.r_ct,
    outcome_sig r.r_cf,
    outcome_sig r.r_ai,
    outcome_sig r.r_full )

let test_attack_matrix_invariant_under_pre_resolution () =
  let off = List.map row_sig (Attacks.Runner.evaluate_all ()) in
  let on = List.map row_sig (Attacks.Runner.evaluate_all ~pre_resolve:true ()) in
  List.iter2
    (fun (id, u, ct, cf, ai, full) (id', u', ct', cf', ai', full') ->
      Alcotest.(check string) "same attack" id id';
      Alcotest.(check string) (id ^ " undefended") u u';
      Alcotest.(check string) (id ^ " ct") ct ct';
      Alcotest.(check string) (id ^ " cf") cf cf';
      Alcotest.(check string) (id ^ " ai") ai ai';
      Alcotest.(check string) (id ^ " full") full full')
    off on

let test_bench_static_artifact () =
  let path = "../BENCH_static_pre_resolution.json" in
  if not (Sys.file_exists path) then
    Alcotest.fail
      "BENCH_static_pre_resolution.json missing (run bench/main.exe --json-static)";
  let doc = Report.Json.of_file path in
  let open Report.Json in
  (match member "schema" doc with
  | Some (Str "bastion-bench-static/2") -> ()
  | _ -> Alcotest.fail "bad or missing schema field");
  let results =
    match Option.bind (member "results" doc) to_list with
    | Some rs -> rs
    | None -> Alcotest.fail "missing results list"
  in
  let keyed want =
    List.filter_map
      (fun r ->
        match (member "app" r, member "config" r) with
        | Some (Str app), Some (Str c) when String.equal c want ->
          Option.map (fun c -> (app, c)) (Option.bind (member "cycles" r) to_float)
        | _ -> None)
      results
  in
  let full = keyed "full" and rank = keyed "rank-only" and off = keyed "off" in
  Alcotest.(check int) "ablation triples complete" (List.length off)
    (List.length full);
  Alcotest.(check int) "rank-only rows present" (List.length off)
    (List.length rank);
  Alcotest.(check bool) "all three apps present" true (List.length full >= 3);
  List.iter
    (fun (app, c_full) ->
      match (List.assoc_opt app off, List.assoc_opt app rank) with
      | Some c_off, Some c_rank ->
        Alcotest.(check bool)
          (app ^ ": full cycles < baseline") true (c_full < c_off);
        Alcotest.(check bool)
          (app ^ ": full cycles <= rank-only") true (c_full <= c_rank)
      | _ -> Alcotest.fail "unpaired pre-resolution record")
    full;
  (* The taint veto, as recorded in the artifact. *)
  let slots =
    match member "pre_resolved_slots" doc with
    | Some (Obj fields) -> fields
    | _ -> Alcotest.fail "missing pre_resolved_slots object"
  in
  Alcotest.(check int) "slot breakdown covers the three apps" 3
    (List.length slots);
  List.iter
    (fun (app, s) ->
      (match Option.bind (member "tainted_pre_resolved" s) to_float with
      | Some 0.0 -> ()
      | Some n ->
        Alcotest.failf "%s: %g tainted slots pre-resolved (veto broken)" app n
      | None -> Alcotest.failf "%s: missing tainted_pre_resolved" app);
      match
        ( Option.bind (member "resolved" s) to_float,
          Option.bind (member "plain" s) to_float,
          Option.bind (member "per_context" s) to_float,
          Option.bind (member "dead_site" s) to_float )
      with
      | Some r, Some p, Some c, Some d ->
        Alcotest.(check (float 0.0)) (app ^ ": breakdown sums") r (p +. c +. d)
      | _ -> Alcotest.failf "%s: missing slot-breakdown fields" app)
    slots

let suites =
  [
    ( "static-cfg",
      [
        Alcotest.test_case "reachability and rpo" `Quick test_cfg_reachability;
        Alcotest.test_case "dominators" `Quick test_cfg_dominators;
        Alcotest.test_case "successors" `Quick test_cfg_successors;
      ] );
    ( "static-dataflow",
      [
        Alcotest.test_case "backward liveness" `Quick test_backward_liveness;
        Alcotest.test_case "liveness terminator uses" `Quick
          test_liveness_terminator_uses;
        Alcotest.test_case "liveness dead stores" `Quick test_liveness_dead_stores;
        Alcotest.test_case "reaching definitions" `Quick test_reaching_defs;
        Alcotest.test_case "constprop branch folding" `Quick
          test_constprop_branch_folding;
        Alcotest.test_case "constprop globals and address-taken" `Quick
          test_constprop_globals_and_addr_taken;
        Alcotest.test_case "constprop interprocedural summaries" `Quick
          test_constprop_interprocedural;
      ] );
    ( "validate-errors",
      [
        Alcotest.test_case "dangling block reference" `Quick
          test_validate_dangling_block;
        Alcotest.test_case "aggregate used as scalar" `Quick
          test_validate_aggregate_as_scalar;
        Alcotest.test_case "duplicate function names" `Quick
          test_validate_duplicate_function;
        Alcotest.test_case "call result to unknown variable" `Quick
          test_validate_unknown_call_dst;
      ] );
    ( "lint",
      [
        Alcotest.test_case "fixture lints clean" `Quick test_fixture_lints_clean;
        Alcotest.test_case "all workload models lint clean" `Quick
          test_models_lint_clean;
        Alcotest.test_case "mutation: dropped ctx_write_mem" `Quick
          test_mutation_uncovered_def;
        Alcotest.test_case "mutation: dropped entry sync" `Quick
          test_mutation_missing_entry_sync;
        Alcotest.test_case "mutation: dropped CF edge" `Quick
          test_mutation_broken_cf_chain;
        Alcotest.test_case "mutation: misclassified address-taken" `Quick
          test_mutation_not_callable_misclass;
        Alcotest.test_case "section table: clean files validate clean" `Quick
          test_section_table_clean;
        Alcotest.test_case "section table: violations are diagnosed" `Quick
          test_section_table_violations;
        Alcotest.test_case "mutation: stale pre-resolution" `Quick
          test_mutation_stale_pre_resolution;
      ] );
    ( "pre-resolution",
      [
        Alcotest.test_case "cycle win on nginx" `Quick test_pre_resolution_cycle_win;
        Alcotest.test_case "Table 6 invariant under pre-resolution" `Slow
          test_attack_matrix_invariant_under_pre_resolution;
        Alcotest.test_case "bench artifact shape" `Quick test_bench_static_artifact;
      ] );
  ]
