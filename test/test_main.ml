let () =
  Alcotest.run "bastion-repro"
    (Test_sil.suites @ Test_machine.suites @ Test_kernel.suites @ Test_analysis.suites @ Test_monitor.suites @ Test_defenses.suites @ Test_attacks.suites @ Test_props.suites @ Test_integration.suites @ Test_fuzz.suites @ Test_misc.suites @ Test_metadata_io.suites @ Test_fastpath.suites @ Test_obs.suites @ Test_semantics.suites @ Test_coverage.suites @ Test_smoke.suites @ Test_workloads.suites @ Test_lint.suites @ Test_static_v2.suites @ Test_mt.suites @ Test_replay.suites @ Test_prefilter.suites @ Test_fleet.suites)
