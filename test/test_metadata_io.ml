(* Metadata serialisation: the compiler -> metadata file -> monitor
   boundary of §7.1.  A restored bundle must behave exactly like the
   in-memory one, for benign runs and under attack. *)

let roundtrip prog =
  let p = Bastion.Api.protect prog in
  let text = Bastion.Metadata_io.write p in
  let restored = Bastion.Metadata_io.restore p.inst.iprog (Bastion.Metadata_io.parse text) in
  (p, text, restored)

let test_header_and_shape () =
  let _, text, _ = roundtrip (Testlib.exec_program ()) in
  Alcotest.(check bool) "header" true
    (Astring.String.is_prefix ~affix:"BASTION-METADATA v3" text);
  Alcotest.(check bool) "has calltype records" true
    (Astring.String.is_infix ~affix:"\ncalltype " text);
  Alcotest.(check bool) "has valid-caller records" true
    (Astring.String.is_infix ~affix:"\nvalid-caller " text);
  Alcotest.(check bool) "has callsite records" true
    (Astring.String.is_infix ~affix:"\ncallsite " text);
  (* v3: every record lives inside a named, length-prefixed section,
     each section's count matches its body exactly, and the canonical
     sections appear in file order with their canonical flags. *)
  let lines = String.split_on_char '\n' text in
  let sections =
    List.filter_map
      (fun l ->
        if String.starts_with ~prefix:"section " l then
          Some (Scanf.sscanf l "section %s %d %s%!" (fun n c f -> (n, c, f)))
        else None)
      lines
  in
  Alcotest.(check (list (triple string int string)))
    "section table (names, flags, order)"
    (List.map
       (fun (n, c, _) ->
         ( n, c,
           match List.assoc n Bastion.Metadata_io.known_sections with
           | `Required -> "required"
           | `Optional -> "optional" ))
       sections)
    sections;
  Alcotest.(check (list string)) "canonical section order"
    (List.map fst Bastion.Metadata_io.known_sections)
    (List.map (fun (n, _, _) -> n) sections);
  (* Counts are exact: total lines = header + section headers + bodies. *)
  let body = List.fold_left (fun acc (_, c, _) -> acc + c) 0 sections in
  let non_blank = List.filter (fun l -> String.length l > 0) lines in
  Alcotest.(check int) "length-prefixed counts cover every record"
    (List.length non_blank)
    (1 + List.length sections + body)

let test_roundtrip_equivalence () =
  let p, _, restored = roundtrip (Testlib.exec_program ()) in
  (* Same call-type table. *)
  Hashtbl.iter
    (fun sysno (ct : Bastion.Calltype.call_type) ->
      let ct' = Bastion.Calltype.call_type restored.calltype sysno in
      Alcotest.(check bool) "directly" ct.directly ct'.directly;
      Alcotest.(check bool) "indirectly" ct.indirectly ct'.indirectly)
    p.calltype.by_sysno;
  (* Same pair count and sensitive callsites. *)
  Alcotest.(check int) "cfg pairs" (Bastion.Cfg_analysis.pair_count p.cfg)
    (Bastion.Cfg_analysis.pair_count restored.cfg);
  Alcotest.(check bool) "sensitive callsites" true
    (Sil.Loc.Set.equal p.cfg.sensitive_callsites restored.cfg.sensitive_callsites);
  (* Same sensitive items and callsite metadata. *)
  Alcotest.(check bool) "items" true
    (Bastion.Arg_analysis.Item_set.equal p.analysis.items restored.analysis.items);
  let key (cm : Bastion.Instrument.callsite_meta) = (cm.cm_id, cm.cm_loc, cm.cm_specs) in
  Alcotest.(check bool) "callsites" true
    (List.sort compare (List.map key p.inst.callsites)
    = List.sort compare (List.map key restored.inst.callsites))

let test_restored_bundle_runs () =
  let _, _, restored = roundtrip (Testlib.exec_program ()) in
  let session = Bastion.Api.launch restored () in
  Testlib.check_exit (Machine.run session.machine);
  Alcotest.(check int) "execve executed" 1
    (List.length (Kernel.Process.executed session.process "execve"))

let test_restored_bundle_blocks_attacks () =
  let _, _, restored = roundtrip (Testlib.exec_program ()) in
  let session = Bastion.Api.launch restored () in
  let m = session.machine in
  let evil = Machine.Layout.intern_string m.layout m.mem "/bin/sh" in
  let fired = ref false in
  m.on_instr <-
    Some
      (fun m (loc : Sil.Loc.t) ->
        if (not !fired) && String.equal loc.func "do_exec" then begin
          fired := true;
          Machine.poke m (Machine.global_address m "gctx") evil
        end);
  Testlib.check_fault (Machine.run m)
    (Testlib.is_monitor_kill ~context:"argument-integrity")
    "argument-integrity"

let test_file_roundtrip () =
  let p = Bastion.Api.protect (Testlib.exec_program ()) in
  let file = Filename.temp_file "bastion" ".meta" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Bastion.Metadata_io.save p ~file;
      let restored = Bastion.Metadata_io.load ~file p.inst.iprog in
      let session = Bastion.Api.launch restored () in
      Testlib.check_exit (Machine.run session.machine))

let test_parse_errors () =
  let expect_error text =
    match Bastion.Metadata_io.parse text with
    | exception Bastion.Metadata_io.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected a parse error"
  in
  expect_error "not a metadata file";
  expect_error "BASTION-METADATA v2\nfrobnicate 1 2 3";
  expect_error "BASTION-METADATA v2\ncalltype 59 z";
  expect_error "BASTION-METADATA v2\npre-resolved 1 z 3";
  expect_error "BASTION-METADATA v2\npre-resolved-ctx 1 2 3";
  expect_error "BASTION-METADATA v2\nslot-rank 1 2 x";
  expect_error "BASTION-METADATA v2\ndead-site z"

let test_old_version_rejected () =
  (* A v1 file must be rejected with a clear version message, not a
     record-level parse failure. *)
  match Bastion.Metadata_io.parse "BASTION-METADATA v1\ncalltype 59 direct" with
  | exception Bastion.Metadata_io.Parse_error (line, msg) ->
    Alcotest.(check int) "error on the header line" 1 line;
    Alcotest.(check bool) "names the unsupported version" true
      (Astring.String.is_infix ~affix:"v1" msg);
    Alcotest.(check bool) "names both supported versions" true
      (Astring.String.is_infix ~affix:"v3" msg
      && Astring.String.is_infix ~affix:"v2" msg)
  | _ -> Alcotest.fail "expected a version error"

(* Field-order-insensitive view of a parsed file: the reader
   accumulates records in reverse, so section skipping must be checked
   up to per-family ordering. *)
let norm (p : Bastion.Metadata_io.parsed) =
  let s l = List.sort compare l in
  {
    p with
    Bastion.Metadata_io.pr_calltype = s p.pr_calltype;
    pr_indirect_callsites = s p.pr_indirect_callsites;
    pr_indirect_targets = s p.pr_indirect_targets;
    pr_valid_callers = s p.pr_valid_callers;
    pr_covered = s p.pr_covered;
    pr_sensitive_callsites = s p.pr_sensitive_callsites;
    pr_callsites = s p.pr_callsites;
    pr_items = s p.pr_items;
    pr_pre_resolved = s p.pr_pre_resolved;
    pr_pre_resolved_ctx = s p.pr_pre_resolved_ctx;
    pr_slot_ranks = s p.pr_slot_ranks;
    pr_dead_sites = s p.pr_dead_sites;
  }

let base_meta_text =
  lazy (Bastion.Metadata_io.write (Bastion.Api.protect (Testlib.exec_program ())))

let test_v2_still_parses () =
  (* The v2 compatibility path: the same records without a section
     table, under the old header, parse to the identical result. *)
  let text = Lazy.force base_meta_text in
  let v2_text =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
        if String.equal l Bastion.Metadata_io.header then
          Some Bastion.Metadata_io.header_v2
        else if String.starts_with ~prefix:"section " l then None
        else Some l)
    |> String.concat "\n"
  in
  Alcotest.(check bool) "v2 and v3 readers agree on the same records" true
    (norm (Bastion.Metadata_io.parse v2_text)
    = norm (Bastion.Metadata_io.parse text))

(* qcheck: a v3 reader skips unknown *optional* sections wholesale —
   injecting any number of them, with any bodies, at any section
   boundary, parses to exactly the section-free result.  This is the
   forward-compatibility law that lets future compilers add sections
   without breaking deployed monitors. *)
let mystery_sections_qcheck =
  QCheck.Test.make ~count:30
    ~name:"metadata-io skips unknown optional sections (forward compat)"
    QCheck.(small_list (pair small_nat (int_bound 4)))
    (fun injections ->
      let text = Lazy.force base_meta_text in
      let clean = norm (Bastion.Metadata_io.parse text) in
      let lines = String.split_on_char '\n' text in
      let n = List.length lines in
      (* Legal insertion points: right after the header, before any
         existing section header, or at end of file (before the final
         blank produced by the trailing newline). *)
      let boundaries =
        List.concat
          (List.mapi
             (fun i l ->
               if i > 0 && String.starts_with ~prefix:"section " l then [ i ]
               else if i = n - 1 && String.length l = 0 then [ i ]
               else [])
             lines)
      in
      let ins : (int, string list) Hashtbl.t = Hashtbl.create 8 in
      List.iteri
        (fun k (bi, cnt) ->
          let pos = List.nth boundaries (bi mod List.length boundaries) in
          let sec =
            Printf.sprintf "section zmystery%d %d optional" k cnt
            :: List.init cnt (fun j -> Printf.sprintf "future-record %d %d" k j)
          in
          Hashtbl.replace ins pos
            (sec @ Option.value ~default:[] (Hashtbl.find_opt ins pos)))
        injections;
      let out =
        List.concat
          (List.mapi
             (fun i l ->
               Option.value ~default:[] (Hashtbl.find_opt ins i) @ [ l ])
             lines)
      in
      norm (Bastion.Metadata_io.parse (String.concat "\n" out)) = clean)

let test_unknown_required_rejected () =
  (* An unknown *required* section must stop the reader with an error
     positioned at the section header: skipping it would silently drop
     records the producer declared soundness-critical. *)
  let text = Lazy.force base_meta_text in
  let injected =
    match String.split_on_char '\n' text with
    | hdr :: rest ->
      String.concat "\n"
        (hdr :: "section exotic 1 required" :: "exotic-record 0" :: rest)
    | [] -> assert false
  in
  match Bastion.Metadata_io.parse injected with
  | exception Bastion.Metadata_io.Parse_error (line, msg) ->
    Alcotest.(check int) "positioned at the section header" 2 line;
    Alcotest.(check bool) "names the section and the reason" true
      (Astring.String.is_infix ~affix:"unknown required section exotic" msg)
  | _ -> Alcotest.fail "expected rejection of an unknown required section"

let test_v3_structural_errors () =
  (* The three structural failure modes of the sectioned format. *)
  let expect affix text =
    match Bastion.Metadata_io.parse text with
    | exception Bastion.Metadata_io.Parse_error (_, msg) ->
      Alcotest.(check bool) affix true (Astring.String.is_infix ~affix msg)
    | _ -> Alcotest.fail ("expected parse error: " ^ affix)
  in
  expect "record outside any section" "BASTION-METADATA v3\ncalltype 59 d";
  expect "truncated section"
    "BASTION-METADATA v3\nsection calltype 2 required\ncalltype 59 d";
  expect "bad section flag"
    "BASTION-METADATA v3\nsection calltype 1 mandatory\ncalltype 59 d";
  expect "negative section length"
    "BASTION-METADATA v3\nsection calltype -1 required"

let test_pre_resolved_roundtrip () =
  let p = Bastion.Api.protect (Testlib.exec_program ()) in
  let p = Bastion_analysis.Preresolve.enrich p in
  (* Guarantee at least one record even if the analysis finds none. *)
  let p =
    if Hashtbl.length p.pre_resolved > 0 then p
    else begin
      let tbl = Hashtbl.copy p.pre_resolved in
      (match p.inst.callsites with
      | cm :: _ -> Hashtbl.replace tbl cm.cm_id [ (0, 42L) ]
      | [] -> ());
      { p with pre_resolved = tbl }
    end
  in
  let restored =
    Bastion.Metadata_io.restore p.inst.iprog
      (Bastion.Metadata_io.parse (Bastion.Metadata_io.write p))
  in
  let dump tbl =
    Hashtbl.fold (fun id l acc -> (id, List.sort compare l) :: acc) tbl []
    |> List.sort compare
  in
  Alcotest.(check bool) "pre-resolved records survive" true
    (dump p.pre_resolved = dump restored.pre_resolved)

(* qcheck: arbitrary pre-resolved tables survive the text format. *)
let preres_qcheck =
  QCheck.Test.make ~count:50 ~name:"metadata-io pre-resolved table roundtrips"
    QCheck.(
      small_list (triple small_nat (int_bound 5) (map Int64.of_int int)))
    (fun records ->
      let p = Bastion.Api.protect (Testlib.exec_program ()) in
      let ids = List.map (fun (cm : Bastion.Instrument.callsite_meta) -> cm.cm_id)
          p.inst.callsites in
      QCheck.assume (ids <> []);
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (i, pos, c) ->
          let id = List.nth ids (i mod List.length ids) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt tbl id) in
          if not (List.mem_assoc pos prev) then
            Hashtbl.replace tbl id ((pos, c) :: prev))
        records;
      let p = { p with pre_resolved = tbl } in
      let restored =
        Bastion.Metadata_io.restore p.inst.iprog
          (Bastion.Metadata_io.parse (Bastion.Metadata_io.write p))
      in
      let dump t =
        Hashtbl.fold (fun id l acc -> (id, List.sort compare l) :: acc) t []
        |> List.sort compare
      in
      dump p.pre_resolved = dump restored.pre_resolved)

let test_v2_record_families_roundtrip () =
  (* The three record families the v2 static suite added: per-context
     constants, taint ranks and dead sites all survive the text trip. *)
  let p = Bastion.Api.protect (Testlib.exec_program ()) in
  let ids =
    List.map
      (fun (cm : Bastion.Instrument.callsite_meta) -> cm.cm_id)
      p.inst.callsites
  in
  let id0 = List.nth ids 0 and id1 = List.nth ids (List.length ids - 1) in
  let pre_ctx = Hashtbl.copy p.pre_resolved_ctx in
  Hashtbl.replace pre_ctx id0 [ (0, id1, 42L); (1, id0, -7L) ];
  let ranks = Hashtbl.copy p.slot_ranks in
  Hashtbl.replace ranks id1 [ (0, true); (2, false) ];
  let dead = Hashtbl.copy p.dead_sites in
  Hashtbl.replace dead id0 ();
  let p = { p with pre_resolved_ctx = pre_ctx; slot_ranks = ranks;
            dead_sites = dead } in
  let restored =
    Bastion.Metadata_io.restore p.inst.iprog
      (Bastion.Metadata_io.parse (Bastion.Metadata_io.write p))
  in
  let dump tbl =
    Hashtbl.fold (fun id l acc -> (id, List.sort compare l) :: acc) tbl []
    |> List.sort compare
  in
  Alcotest.(check bool) "pre-resolved-ctx records survive" true
    (dump p.pre_resolved_ctx = dump restored.pre_resolved_ctx);
  Alcotest.(check bool) "slot-rank records survive" true
    (dump p.slot_ranks = dump restored.slot_ranks);
  Alcotest.(check bool) "dead-site records survive" true
    (Hashtbl.fold (fun id () acc -> id :: acc) p.dead_sites []
     |> List.sort compare
    = (Hashtbl.fold (fun id () acc -> id :: acc) restored.dead_sites []
      |> List.sort compare))

let test_enriched_workload_roundtrip () =
  (* A real enriched bundle (vsftpd carries per-context records) dumps
     and restores with every table intact. *)
  let app = Workloads.Drivers.vsftpd () in
  let p =
    Bastion_analysis.Preresolve.enrich
      (Bastion.Api.protect (Lazy.force app.prog))
  in
  Alcotest.(check bool) "vsftpd has per-context records" true
    (Hashtbl.length p.pre_resolved_ctx > 0);
  Alcotest.(check bool) "vsftpd has ranked slots" true
    (Hashtbl.length p.slot_ranks > 0);
  let restored =
    Bastion.Metadata_io.restore p.inst.iprog
      (Bastion.Metadata_io.parse (Bastion.Metadata_io.write p))
  in
  let dump tbl =
    Hashtbl.fold (fun id l acc -> (id, List.sort compare l) :: acc) tbl []
    |> List.sort compare
  in
  Alcotest.(check bool) "ctx table identical" true
    (dump p.pre_resolved_ctx = dump restored.pre_resolved_ctx);
  Alcotest.(check bool) "rank table identical" true
    (dump p.slot_ranks = dump restored.slot_ranks)

let test_restored_pre_resolved_still_checks () =
  (* A restored enriched bundle still verifies pre-resolved slots
     statically at run time. *)
  let app = Workloads.Drivers.nginx () in
  let p =
    Bastion_analysis.Preresolve.enrich
      (Bastion.Api.protect (Lazy.force app.prog))
  in
  Alcotest.(check bool) "nginx has pre-resolvable slots" true
    (Hashtbl.length p.pre_resolved > 0);
  let restored =
    Bastion.Metadata_io.restore p.inst.iprog
      (Bastion.Metadata_io.parse (Bastion.Metadata_io.write p))
  in
  let session = Bastion.Api.launch restored () in
  app.setup session.process;
  Testlib.check_exit (Machine.run session.machine);
  Alcotest.(check bool) "static AI verifications happened" true
    (Bastion.Monitor.pre_resolved_hits session.monitor > 0)

let test_workload_scale_roundtrip () =
  (* The full NGINX model's metadata survives the trip too. *)
  let prog =
    Workloads.Nginx_model.build
      { Workloads.Nginx_model.default with connections = 2; requests_per_conn = 2;
        init_mmap = 4; init_mprotect = 4; filler = false }
  in
  let p = Bastion.Api.protect prog in
  let restored =
    Bastion.Metadata_io.restore p.inst.iprog
      (Bastion.Metadata_io.parse (Bastion.Metadata_io.write p))
  in
  let session = Bastion.Api.launch restored () in
  Workloads.Nginx_model.setup
    { Workloads.Nginx_model.default with connections = 2 }
    session.process;
  Testlib.check_exit (Machine.run session.machine)

let suites =
  [
    ( "metadata-io",
      [
        Alcotest.test_case "header and record shape" `Quick test_header_and_shape;
        Alcotest.test_case "roundtrip equivalence" `Quick test_roundtrip_equivalence;
        Alcotest.test_case "restored bundle runs" `Quick test_restored_bundle_runs;
        Alcotest.test_case "restored bundle blocks attacks" `Quick
          test_restored_bundle_blocks_attacks;
        Alcotest.test_case "file save/load" `Quick test_file_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "old version rejected clearly" `Quick
          test_old_version_rejected;
        Alcotest.test_case "v2 files still parse identically" `Quick
          test_v2_still_parses;
        QCheck_alcotest.to_alcotest mystery_sections_qcheck;
        Alcotest.test_case "unknown required section rejected" `Quick
          test_unknown_required_rejected;
        Alcotest.test_case "v3 structural errors" `Quick
          test_v3_structural_errors;
        Alcotest.test_case "pre-resolved records roundtrip" `Quick
          test_pre_resolved_roundtrip;
        QCheck_alcotest.to_alcotest preres_qcheck;
        Alcotest.test_case "v2 record families roundtrip" `Quick
          test_v2_record_families_roundtrip;
        Alcotest.test_case "enriched workload bundle roundtrips" `Quick
          test_enriched_workload_roundtrip;
        Alcotest.test_case "restored pre-resolved bundle checks statically" `Slow
          test_restored_pre_resolved_still_checks;
        Alcotest.test_case "workload-scale roundtrip" `Quick test_workload_scale_roundtrip;
      ] );
  ]
