(* Unit tests for the runtime monitor: each context's detection in
   isolation, the seccomp filter it builds, the fs-extension modes, the
   sockaddr fast path and the shadow-memory runtime. *)

module B = Sil.Builder
open Sil.Operand

let i64 = Sil.Types.I64
let ptr = Sil.Types.Ptr Sil.Types.I64

let launch ?(contexts = Bastion.Monitor.all_contexts) ?(fs_mode = Bastion.Monitor.Fs_off)
    ?(sockaddr_fastpath = true) ?(protect_filesystem = false) ?(trap_cache = true) prog =
  let protected_prog = Bastion.Api.protect ~protect_filesystem prog in
  Bastion.Api.launch
    ~monitor_config:
      { Bastion.Monitor.default_config with contexts; fs_mode; sockaddr_fastpath;
        trap_cache }
    protected_prog ()

(* Fixture: main stores a prot value, helper mprotects with it; also a
   benign indirect call and an execve path (for extended checks). *)
let fixture () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.global pb "g_prot" i64 Sil.Prog.Zero;
  B.global pb "g_path" ptr Sil.Prog.Zero;
  B.global pb "g_fp" ptr (Sil.Prog.Fptr "helper");
  B.global pb "g_buf" (Sil.Types.Array (i64, 8)) Sil.Prog.Zero;
  let fb = B.func pb "helper" ~params:[ ("len", i64) ] in
  let prot = B.local fb "prot" i64 in
  B.load fb prot (Sil.Place.Lglobal "g_prot");
  B.call fb "mprotect" [ Null; Var (B.param fb 0); Var prot ];
  B.ret fb (Some (const 0));
  B.seal fb;
  let fb = B.func pb "do_exec" ~params:[] in
  let path = B.local fb "path" ptr in
  B.load fb path (Sil.Place.Lglobal "g_path");
  B.call fb "execve" [ Var path; Null; Null ];
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  let h = B.local fb "h" ptr in
  let r = B.local fb "r" i64 in
  B.store fb (Sil.Place.Lglobal "g_prot") (const 1);
  B.store fb (Sil.Place.Lglobal "g_path") (Cstr "/usr/bin/tool");
  B.call fb "helper" [ const 4096 ];
  B.load fb h (Sil.Place.Lglobal "g_fp");
  B.call_indirect fb ~dst:r (Var h) [ const 64 ];
  B.call fb "do_exec" [];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let poke_at (m : Machine.t) func action =
  let fired = ref false in
  m.on_instr <-
    Some
      (fun m (loc : Sil.Loc.t) ->
        if (not !fired) && String.equal loc.func func then begin
          fired := true;
          action m
        end)

(* --- seccomp filter construction -------------------------------------- *)

let test_filter_rules () =
  let session = launch (fixture ()) in
  match session.process.filter with
  | None -> Alcotest.fail "no filter installed"
  | Some f ->
    let rule name = Kernel.Seccomp.rule f (Kernel.Syscalls.number name) in
    Alcotest.(check bool) "mprotect traced" true (rule "mprotect" = Kernel.Seccomp.Trace);
    Alcotest.(check bool) "execve traced" true (rule "execve" = Kernel.Seccomp.Trace);
    Alcotest.(check bool) "setuid (unused, sensitive) killed" true
      (rule "setuid" = Kernel.Seccomp.Kill);
    Alcotest.(check bool) "getpid (unused, benign) killed (§11.3)" true
      (rule "getpid" = Kernel.Seccomp.Kill);
    Alcotest.(check bool) "open allowed in default scope" true
      (rule "open" = Kernel.Seccomp.Kill || rule "open" = Kernel.Seccomp.Allow)

let test_filter_fs_modes () =
  let prog = fixture () in
  let rule_of fs_mode name =
    let session = launch ~fs_mode ~protect_filesystem:true prog in
    match session.process.filter with
    | Some f -> Kernel.Seccomp.rule f (Kernel.Syscalls.number name)
    | None -> Alcotest.fail "no filter"
  in
  Alcotest.(check bool) "hook-only: fs syscalls evaluated but allowed" true
    (rule_of Bastion.Monitor.Fs_hook_only "execve" = Kernel.Seccomp.Trace);
  let session = launch ~fs_mode:Bastion.Monitor.Fs_fetch_only ~protect_filesystem:true prog in
  (match session.process.filter with
  | Some f ->
    (* The fixture has no fs syscalls used, so check a used one stays
       traced and the default stays kill. *)
    Alcotest.(check bool) "mprotect still traced" true
      (Kernel.Seccomp.rule f (Kernel.Syscalls.number "mprotect") = Kernel.Seccomp.Trace)
  | None -> Alcotest.fail "no filter");
  ignore session

(* --- call-type context -------------------------------------------------- *)

let test_ct_blocks_indirect_syscall () =
  let session =
    launch ~contexts:{ Bastion.Monitor.ct = true; cf = false; ai = false } (fixture ())
  in
  let m = session.machine in
  poke_at m "main" (fun m ->
      Machine.poke m (Machine.global_address m "g_fp")
        (Machine.function_address m "mprotect"));
  Testlib.check_fault (Machine.run m)
    (Testlib.is_monitor_kill ~context:"call-type")
    "call-type";
  match Bastion.Monitor.denials session.monitor with
  | [ d ] ->
    Alcotest.(check string) "denial names mprotect" "mprotect"
      (Kernel.Syscalls.name d.d_sysno)
  | _ -> Alcotest.fail "expected exactly one denial"

(* --- control-flow context ----------------------------------------------- *)

let test_cf_blocks_invalid_pair () =
  let session =
    launch ~contexts:{ Bastion.Monitor.ct = false; cf = true; ai = false } (fixture ())
  in
  let m = session.machine in
  (* ROP: redirect main's helper-call return into do_exec's body. *)
  poke_at m "helper" (fun m ->
      match Machine.frames m with
      | frame :: _ ->
        Machine.poke m frame.ret_slot
          (Machine.instr_address m (Sil.Loc.make "do_exec" "entry" 0))
      | [] -> ());
  Testlib.check_fault (Machine.run m)
    (Testlib.is_monitor_kill ~context:"control-flow")
    "control-flow"

let test_cf_accepts_legit_indirect () =
  (* The benign run includes an indirect call on the path to no syscall;
     CF-only must pass the whole program. *)
  let session =
    launch ~contexts:{ Bastion.Monitor.ct = false; cf = true; ai = false } (fixture ())
  in
  Testlib.check_exit (Machine.run session.machine)

(* --- argument-integrity context ----------------------------------------- *)

let test_ai_blocks_global_corruption () =
  let session =
    launch ~contexts:{ Bastion.Monitor.ct = false; cf = false; ai = true } (fixture ())
  in
  let m = session.machine in
  poke_at m "helper" (fun m -> Machine.poke m (Machine.global_address m "g_prot") 7L);
  Testlib.check_fault (Machine.run m)
    (Testlib.is_monitor_kill ~context:"argument-integrity")
    "argument-integrity";
  (* The corrupted mprotect must not have executed. *)
  Alcotest.(check int) "mprotect blocked" 0
    (List.length (Kernel.Process.executed session.process "mprotect"))

let test_ai_blocks_extended_corruption () =
  let session =
    launch ~contexts:{ Bastion.Monitor.ct = false; cf = false; ai = true } (fixture ())
  in
  let m = session.machine in
  poke_at m "do_exec" (fun m ->
      (* Point the path at attacker-written bytes in a writable buffer. *)
      let buf = Machine.global_address m "g_buf" in
      Attacks.Primitives.plant_string m buf "/bin/sh";
      Machine.poke m (Machine.global_address m "g_path") buf);
  Testlib.check_fault (Machine.run m)
    (Testlib.is_monitor_kill ~context:"argument-integrity")
    "argument-integrity";
  Alcotest.(check int) "execve blocked" 0
    (List.length (Kernel.Process.executed session.process "execve"))

let test_ai_allows_legit_rodata_path () =
  let session =
    launch ~contexts:{ Bastion.Monitor.ct = false; cf = false; ai = true } (fixture ())
  in
  Testlib.check_exit (Machine.run session.machine);
  match Kernel.Process.executed session.process "execve" with
  | [ e ] -> Alcotest.(check (option string)) "path" (Some "/usr/bin/tool") e.ev_path
  | _ -> Alcotest.fail "expected one execve"

let test_ai_requires_traced_callsite () =
  (* A sensitive syscall reached from a callsite with no argument
     metadata (here: an indirect call to the stub with only AI on) is
     untraced and must die. *)
  let session =
    launch ~contexts:{ Bastion.Monitor.ct = false; cf = false; ai = true } (fixture ())
  in
  let m = session.machine in
  poke_at m "main" (fun m ->
      Machine.poke m (Machine.global_address m "g_fp")
        (Machine.function_address m "mprotect"));
  Testlib.check_fault (Machine.run m)
    (Testlib.is_monitor_kill ~context:"argument-integrity")
    "argument-integrity"

(* --- the §11.1 adaptive attacker ------------------------------------------ *)

(* Perfect mimicry is harmless: an attacker who writes the *expected*
   values back bypasses the contexts but thereby performs exactly the
   legitimate operation — no gain (the paper's §11.1 argument). *)
let test_adaptive_mimicry_is_harmless () =
  let session = launch (fixture ()) in
  let m = session.machine in
  poke_at m "helper" (fun m ->
      (* Write the value the shadow already expects. *)
      Machine.poke m (Machine.global_address m "g_prot") 1L);
  Testlib.check_exit (Machine.run m);
  match Kernel.Process.executed session.process "mprotect" with
  | [] -> Alcotest.fail "expected mprotect to run"
  | evs ->
    List.iter
      (fun (e : Kernel.Process.exec_event) ->
        Alcotest.(check int64) "prot unchanged" 1L e.ev_args.(2))
      evs

(* Partial mimicry is caught: matching every static constraint but one
   mem-backed variable still trips Argument Integrity. *)
let test_adaptive_partial_mimicry_caught () =
  let session = launch (fixture ()) in
  let m = session.machine in
  poke_at m "do_exec" (fun m ->
      (* The attacker leaves the pointer intact (it must match its
         shadow) and instead corrupts the pointee in rodata... which DEP
         forbids; the best remaining move is a fresh buffer, and that
         buffer is untraced. *)
      let buf = Machine.global_address m "g_buf" in
      Machine.poke m buf (Int64.of_int (Char.code '/'));
      Machine.poke m (Machine.global_address m "g_path") buf);
  Testlib.check_fault (Machine.run m)
    (Testlib.is_monitor_kill ~context:"argument-integrity")
    "argument-integrity"

(* --- sockaddr fast path -------------------------------------------------- *)

let accept_prog () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.global pb "g_lfd" i64 Sil.Prog.Zero;
  let fb = B.func pb "main" ~params:[] in
  let s = B.local fb "s" i64 in
  let sa = B.local fb "sa" (Sil.Types.Array (i64, 2)) in
  let sap = B.local fb "sap" ptr in
  let c = B.local fb "c" i64 in
  B.call fb ~dst:s "socket" [ const 2; const 1; const 0 ];
  B.call fb "bind" [ Var s; const 80 ];
  B.call fb "listen" [ Var s; const 4 ];
  B.addr_of fb sap (Sil.Place.Lvar sa);
  B.store fb (Sil.Place.Lindex (Var sap, const 0, i64)) (const 0);
  B.store fb (Sil.Place.Lindex (Var sap, const 1, i64)) (const 0);
  B.call fb ~dst:c "accept" [ Var s; Var sap; const 2 ];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let test_sockaddr_paths () =
  let run fast =
    let session = launch ~sockaddr_fastpath:fast (accept_prog ()) in
    ignore (Kernel.Net.enqueue session.process.net 80 ~request_words:1 ~payload:"x");
    Testlib.check_exit (Machine.run session.machine);
    session.machine.stats.cycles
  in
  let fast = run true and slow = run false in
  Alcotest.(check bool) "both pass; fast path not slower" true (fast <= slow)

(* --- misc ----------------------------------------------------------------- *)

let test_monitor_stats () =
  let session = launch (fixture ()) in
  Testlib.check_exit (Machine.run session.machine);
  Alcotest.(check bool) "init cycles positive" true (session.monitor.init_cycles > 0);
  Alcotest.(check int) "traps checked" 3 session.monitor.traps_checked;
  match Bastion.Monitor.depth_stats session.monitor with
  | Some (dmin, davg, dmax) ->
    Alcotest.(check bool) "depth sane" true (dmin >= 1 && davg >= 1.0 && dmax >= dmin)
  | None -> Alcotest.fail "no depth stats"

let test_runtime_shadow_sync () =
  let session = launch (fixture ()) in
  Testlib.check_exit (Machine.run session.machine);
  let m = session.machine in
  (* After the run, shadow copies of sensitive globals equal memory. *)
  let gprot = Machine.global_address m "g_prot" in
  Alcotest.(check (option int64)) "g_prot shadow in sync"
    (Some (Machine.peek m gprot))
    (Bastion.Shadow_memory.shadow session.runtime.shadow ~addr:gprot);
  Alcotest.(check bool) "write_mem ran" true (session.runtime.write_mem_calls > 0);
  Alcotest.(check bool) "bind_mem ran" true (session.runtime.bind_mem_calls > 0)

let suites =
  [
    ( "monitor",
      [
        Alcotest.test_case "seccomp filter rules" `Quick test_filter_rules;
        Alcotest.test_case "filter fs modes" `Quick test_filter_fs_modes;
        Alcotest.test_case "CT blocks indirect syscall" `Quick
          test_ct_blocks_indirect_syscall;
        Alcotest.test_case "CF blocks invalid pair" `Quick test_cf_blocks_invalid_pair;
        Alcotest.test_case "CF accepts legit indirect" `Quick test_cf_accepts_legit_indirect;
        Alcotest.test_case "AI blocks global corruption" `Quick
          test_ai_blocks_global_corruption;
        Alcotest.test_case "AI blocks extended corruption" `Quick
          test_ai_blocks_extended_corruption;
        Alcotest.test_case "AI allows legit rodata path" `Quick
          test_ai_allows_legit_rodata_path;
        Alcotest.test_case "AI requires traced callsite" `Quick
          test_ai_requires_traced_callsite;
        Alcotest.test_case "adaptive mimicry is harmless (§11.1)" `Quick
          test_adaptive_mimicry_is_harmless;
        Alcotest.test_case "partial mimicry caught (§11.1)" `Quick
          test_adaptive_partial_mimicry_caught;
        Alcotest.test_case "sockaddr fast path" `Quick test_sockaddr_paths;
        Alcotest.test_case "monitor stats" `Quick test_monitor_stats;
        Alcotest.test_case "runtime shadow sync" `Quick test_runtime_shadow_sync;
      ] );
  ]
