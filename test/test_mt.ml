(* The sharded multi-tracee monitor suite: Trap_queue unit tests and
   backpressure (a full bounded queue blocks producers, never drops),
   Monitor_pool determinism (qcheck: any shard count reproduces the
   serial per-tracee verdict streams), run_multi equivalence against a
   serial Drivers.run loop, the sharded Table 6 matrix, the
   Api.protect ~validate lint gate, and the committed
   BENCH_parallel_monitor.json artifact shape. *)

module Q = Bastion_mt.Trap_queue
module Pool = Bastion_mt.Monitor_pool
module D = Workloads.Drivers

(* --- Trap_queue ---------------------------------------------------- *)

let test_queue_fifo_and_stats () =
  let q = Q.create ~capacity:4 in
  List.iter (Q.push q) [ 1; 2; 3 ];
  Alcotest.(check int) "depth 3" 3 (Q.depth q);
  (* Close first so draining can never block. *)
  Q.close q;
  Alcotest.(check bool) "closed" true (Q.is_closed q);
  Q.close q (* idempotent *);
  Alcotest.(check (list int)) "first batch, FIFO" [ 1; 2 ] (Q.pop_batch q ~max:2);
  Alcotest.(check (list int)) "rest" [ 3 ] (Q.pop_batch q ~max:8);
  Alcotest.(check (list int)) "end-of-stream" [] (Q.pop_batch q ~max:8);
  let s = Q.stats q in
  Alcotest.(check int) "pushed" 3 s.Q.q_pushed;
  Alcotest.(check int) "popped" 3 s.Q.q_popped;
  Alcotest.(check int) "max depth" 3 s.Q.q_max_depth;
  Alcotest.(check int) "batches" 2 s.Q.q_batches;
  Alcotest.(check (float 1e-9)) "mean batch" 1.5 (Q.mean_batch s);
  Alcotest.(check bool) "no blocked pushes" true (s.Q.q_blocked_pushes = 0)

let test_queue_close_semantics () =
  let q = Q.create ~capacity:2 in
  Q.push q 1;
  Q.close q;
  Alcotest.check_raises "push after close" Q.Closed (fun () -> Q.push q 2);
  Alcotest.check_raises "try_push after close" Q.Closed (fun () ->
      ignore (Q.try_push q 2));
  (* Pending items survive the close. *)
  Alcotest.(check (list int)) "drain after close" [ 1 ] (Q.pop_batch q ~max:4);
  Alcotest.(check (list int)) "then end-of-stream" [] (Q.pop_batch q ~max:4)

let test_queue_try_push_full () =
  let q = Q.create ~capacity:1 in
  Alcotest.(check bool) "first fits" true (Q.try_push q 10);
  Alcotest.(check bool) "second refused" false (Q.try_push q 11);
  Alcotest.(check int) "depth still 1" 1 (Q.depth q);
  Q.close q;
  Alcotest.(check (list int)) "nothing lost" [ 10 ] (Q.pop_batch q ~max:4);
  Alcotest.check_raises "create capacity 0" (Invalid_argument
    "Trap_queue.create: capacity must be >= 1") (fun () ->
      ignore (Q.create ~capacity:0))

(* Arrival stamps ride alongside items: push_at records the open-loop
   arrival time, pop_batch_stamped hands it back in FIFO order, and
   the unstamped API still sees plain items (stamp 0). *)
let test_queue_arrival_stamps () =
  let q = Q.create ~capacity:8 in
  Q.push_at q ~at:100 "a";
  Q.push_at q ~at:250 "b";
  Q.push q "c";
  Q.close q;
  Alcotest.(check (list (pair int string)))
    "stamps preserved in FIFO order"
    [ (100, "a"); (250, "b"); (0, "c") ]
    (Q.pop_batch_stamped q ~max:8);
  let q2 = Q.create ~capacity:8 in
  Q.push_at q2 ~at:7 1;
  Q.close q2;
  Alcotest.(check (list int)) "unstamped pop drops the stamp" [ 1 ]
    (Q.pop_batch q2 ~max:8)

(* Queue telemetry as registry probes: the same counters the stats
   snapshot reports, sampled live at read time under the queue lock. *)
let test_queue_register_probes () =
  let q = Q.create ~capacity:4 in
  let reg = Obs.Metrics.create () in
  Q.register_probes q reg ~prefix:"q0";
  let probe name = List.assoc ("q0." ^ name) (Obs.Metrics.counter_values reg) in
  Alcotest.(check (float 1e-9)) "depth before pushes" 0.0 (probe "depth");
  List.iter (Q.push q) [ 1; 2; 3 ];
  Alcotest.(check (float 1e-9)) "depth sampled live" 3.0 (probe "depth");
  Alcotest.(check (float 1e-9)) "pushed" 3.0 (probe "pushed");
  Q.close q;
  ignore (Q.pop_batch q ~max:2);
  ignore (Q.pop_batch q ~max:8);
  Alcotest.(check (float 1e-9)) "popped" 3.0 (probe "popped");
  Alcotest.(check (float 1e-9)) "max depth" 3.0 (probe "max_depth");
  Alcotest.(check (float 1e-9)) "batches" 2.0 (probe "batches");
  Alcotest.(check (float 1e-9)) "mean batch" 1.5 (probe "mean_batch");
  Alcotest.(check (float 1e-9)) "blocked pushes" 0.0 (probe "blocked_pushes")

(* A producer domain against a tiny queue and a deliberately slow
   consumer: the producer must block (backpressure) and every item must
   come through in order — never dropped. *)
let test_backpressure_blocks_never_drops () =
  let n = 50 in
  let q = Q.create ~capacity:2 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          Q.push q i
        done;
        Q.close q)
  in
  (* Give the producer time to fill the queue and block on it. *)
  Unix.sleepf 0.02;
  let received = ref [] in
  let rec drain () =
    match Q.pop_batch q ~max:4 with
    | [] -> ()
    | items ->
      received := List.rev_append items !received;
      drain ()
  in
  drain ();
  Domain.join producer;
  Alcotest.(check (list int)) "all items, in order" (List.init n Fun.id)
    (List.rev !received);
  let s = Q.stats q in
  Alcotest.(check int) "everything pushed" n s.Q.q_pushed;
  Alcotest.(check int) "everything popped" n s.Q.q_popped;
  Alcotest.(check bool) "the producer did block" true (s.Q.q_blocked_pushes > 0);
  Alcotest.(check bool) "depth never exceeded capacity" true
    (s.Q.q_max_depth <= 2)

(* --- Trap_queue.Deque and Cell (the stealing substrate) ------------ *)

let test_deque_owner_and_thief () =
  let dq = Q.Deque.create () in
  Alcotest.(check (option int)) "empty pop" None (Q.Deque.pop_front dq);
  Alcotest.(check (option int)) "empty steal" None (Q.Deque.steal_back dq);
  List.iter (Q.Deque.push_back dq) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Q.Deque.length dq);
  (* The owner pops the front (FIFO), a thief steals the back. *)
  Alcotest.(check (option int)) "owner pops oldest" (Some 1) (Q.Deque.pop_front dq);
  Alcotest.(check (option int)) "thief steals newest" (Some 3)
    (Q.Deque.steal_back dq);
  Alcotest.(check (option int)) "owner gets the rest" (Some 2)
    (Q.Deque.pop_front dq);
  Alcotest.(check (option int)) "drained" None (Q.Deque.pop_front dq);
  let s = Q.Deque.stats dq in
  Alcotest.(check int) "pushed" 3 s.Q.Deque.dq_pushed;
  Alcotest.(check int) "popped" 2 s.Q.Deque.dq_popped;
  Alcotest.(check int) "stolen" 1 s.Q.Deque.dq_stolen;
  Alcotest.(check int) "high water" 3 s.Q.Deque.dq_max_len

let test_cell_handoff () =
  let c = Q.Cell.create () in
  Q.Cell.fill c 42;
  Alcotest.check_raises "double fill rejected"
    (Invalid_argument "Trap_queue.Cell.fill: cell already filled") (fun () ->
      Q.Cell.fill c 43);
  Alcotest.(check int) "take consumes" 42 (Q.Cell.take c);
  (* After the take, the cell is a fresh single-shot box again. *)
  Q.Cell.fill c 7;
  Alcotest.(check int) "refill after take" 7 (Q.Cell.take c);
  (* The blocking edge: a taker on another domain waits for the fill. *)
  let c2 = Q.Cell.create () in
  let taker = Domain.spawn (fun () -> Q.Cell.take c2) in
  Unix.sleepf 0.01;
  Q.Cell.fill c2 99;
  Alcotest.(check int) "cross-domain take sees the fill" 99 (Domain.join taker)

(* --- with_pool failure semantics (first failure wins) -------------- *)

exception Feeder_boom
exception Worker_boom

(* Regression: the feeder's exception must survive even when every
   worker *also* raised — the cleanup joins must discard worker
   errors, not let them shadow the first failure. *)
let test_pool_feeder_exception_wins () =
  let items () =
    Seq.Cons ((0, 0), fun () -> raise Feeder_boom)
  in
  Alcotest.check_raises "feeder exception wins over worker errors"
    Feeder_boom (fun () ->
      ignore
        (Pool.with_pool
           (Pool.config ~shards:2 ())
           ~items
           ~worker:(fun ~shard:_ _ -> raise Worker_boom)))

(* --- Monitor_pool: the stream verifier ----------------------------- *)

(* A deterministic stateful per-tracee verifier: each verdict folds the
   trap into a running per-tracee accumulator, so any reordering or
   cross-tracee state leak changes the output. *)
let stream_init tracee = ref (tracee * 7919)

let stream_verify ~tracee state trap =
  state := ((!state * 31) + trap) land 0xFFFFFF;
  (tracee, trap, !state)

let test_stream_matches_serial_small () =
  let stream = [ (0, 5); (1, 9); (0, 2); (2, 1); (1, 4); (0, 8) ] in
  let serial =
    Pool.process_stream_serial ~tracees:3 ~init:stream_init
      ~verify:stream_verify stream
  in
  List.iter
    (fun shards ->
      let sharded, stats =
        Pool.process_stream
          ~config:(Pool.config ~shards ())
          ~tracees:3 ~init:stream_init ~verify:stream_verify stream
      in
      Alcotest.(check bool)
        (Printf.sprintf "%d shards match serial" shards)
        true
        (sharded = serial);
      Alcotest.(check int) "all items accounted" (List.length stream)
        (Array.fold_left (fun acc sh -> acc + sh.Pool.sh_items) 0
           stats.Pool.p_shards))
    [ 1; 2; 3; 4 ]

let test_stream_rejects_bad_tracee () =
  Alcotest.check_raises "tracee out of range"
    (Invalid_argument "Monitor_pool.process_stream: tracee 3 not in [0,3)")
    (fun () ->
      ignore
        (Pool.process_stream
           ~config:(Pool.config ~shards:2 ())
           ~tracees:3 ~init:stream_init ~verify:stream_verify [ (3, 1) ]))

(* qcheck: random trap streams, random shard counts — the sharded
   pipeline reproduces the serial per-tracee verdict streams exactly. *)
let prop_stream_equivalence =
  QCheck.Test.make ~count:60
    ~name:"Monitor_pool.process_stream == serial for any shard count"
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 120) (pair (int_bound 5) (int_bound 1000)))
        (int_range 1 6))
    (fun (stream, shards) ->
      let tracees = 6 in
      let serial =
        Pool.process_stream_serial ~tracees ~init:stream_init
          ~verify:stream_verify stream
      in
      let sharded, _ =
        Pool.process_stream
          ~config:(Pool.config ~shards ())
          ~tracees ~init:stream_init ~verify:stream_verify stream
      in
      sharded = serial)

(* qcheck: random streams, random shard counts, random trap pricing —
   every placement policy reproduces the serial verdict streams
   bit-for-bit.  This is the scheduler's correctness law: migration
   through the claim-token handoff must be invisible to verdicts. *)
let prop_stream_policy_equivalence =
  QCheck.Test.make ~count:40
    ~name:"process_stream == serial under every policy and service pricing"
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 100) (pair (int_bound 5) (int_bound 1000)))
        (int_range 1 5) (int_range 1 9))
    (fun (stream, shards, price) ->
      let tracees = 6 in
      (* A deterministic per-trap price derived from the trap value. *)
      let service trap = 1 + ((trap * 7) mod (price * 13)) in
      let serial =
        Pool.process_stream_serial ~tracees ~init:stream_init
          ~verify:stream_verify stream
      in
      List.for_all
        (fun policy ->
          let sharded, stats =
            Pool.process_stream ~service
              ~config:(Pool.config ~shards ~policy ())
              ~tracees ~init:stream_init ~verify:stream_verify stream
          in
          sharded = serial
          && (policy <> Pool.Static || stats.Pool.p_steals = 0))
        Pool.all_policies)

(* The adversarial elephant: one tracee fires six traps for every one
   of the others', so its static home shard drowns.  The steal policy
   must actually fire (steals > 0) and must level the pool: the
   hottest shard processes strictly fewer items than under static
   pinning.  Deterministic — the stream is fixed, the plan is virtual. *)
let test_stream_steal_beats_static () =
  let tracees = 4 and shards = 2 in
  (* Tracees 0 and 2 are homed on shard 0; 0 becomes the elephant.  A
     balanced warm-up first, so every tracee's claim is established on
     its home shard — only then does the elephant drown shard 0 and
     force tracee 2's claim to be *stolen* rather than first-placed. *)
  let rounds n r = List.concat_map (fun t -> List.map (fun tr -> (tr, t)) r)
      (List.init n Fun.id)
  in
  let stream = rounds 10 [ 0; 1; 2; 3 ] @ rounds 20 [ 0; 0; 0; 0; 0; 0; 1; 2; 3 ] in
  let run policy =
    let verdicts, stats =
      Pool.process_stream
        ~config:(Pool.config ~shards ~policy ())
        ~tracees ~init:stream_init ~verify:stream_verify stream
    in
    (verdicts, stats)
  in
  let serial =
    Pool.process_stream_serial ~tracees ~init:stream_init
      ~verify:stream_verify stream
  in
  let max_items (stats : Pool.stats) =
    Array.fold_left (fun acc sh -> max acc sh.Pool.sh_items) 0 stats.Pool.p_shards
  in
  let v_static, s_static = run Pool.Static in
  let v_steal, s_steal = run Pool.Steal in
  Alcotest.(check bool) "static matches serial" true (v_static = serial);
  Alcotest.(check bool) "steal matches serial" true (v_steal = serial);
  Alcotest.(check int) "static never steals" 0 s_static.Pool.p_steals;
  Alcotest.(check bool) "steal policy actually stole" true
    (s_steal.Pool.p_steals > 0);
  Alcotest.(check bool)
    (Printf.sprintf "hottest shard levelled (%d < %d items)"
       (max_items s_steal) (max_items s_static))
    true
    (max_items s_steal < max_items s_static);
  Alcotest.(check bool) "spread improves" true
    (Pool.util_spread s_steal < Pool.util_spread s_static)

(* --- the deterministic whole-job scheduler ------------------------- *)

let test_plan_jobs_policies () =
  let costs = [| 100; 10; 10; 10; 10; 10 |] in
  let shards = 2 in
  let static = Pool.plan_jobs ~policy:Pool.Static ~shards costs in
  Alcotest.(check (array int)) "static pins to homes" [| 0; 1; 0; 1; 0; 1 |]
    static.Pool.jp_assignment;
  Alcotest.(check int) "static makespan is the hot home" 120
    static.Pool.jp_makespan;
  Alcotest.(check int) "static steals nothing" 0 static.Pool.jp_steals;
  Alcotest.(check int) "static migrates nothing" 0 static.Pool.jp_migrations;
  let least = Pool.plan_jobs ~policy:Pool.Least_loaded ~shards costs in
  Alcotest.(check int) "least-loaded evades the elephant" 100
    least.Pool.jp_makespan;
  Alcotest.(check int) "least-loaded migrated the elephant's home peers" 2
    least.Pool.jp_migrations;
  Alcotest.(check int) "least-loaded records no steals" 0 least.Pool.jp_steals;
  let steal = Pool.plan_jobs ~policy:Pool.Steal ~shards costs in
  Alcotest.(check int) "steal reaches the same makespan" 100
    steal.Pool.jp_makespan;
  Alcotest.(check int) "two victims stolen" 2 steal.Pool.jp_steals;
  Alcotest.(check int) "steals are migrations" 2 steal.Pool.jp_migrations;
  List.iter
    (fun (p : Pool.job_plan) ->
      Alcotest.(check int) "every cycle accounted"
        (Array.fold_left ( + ) 0 costs)
        (Array.fold_left ( + ) 0 p.Pool.jp_shard_cycles))
    [ static; least; steal ]

(* --- Monitor_pool: whole-tracee jobs ------------------------------- *)

let test_run_tracees_order () =
  let jobs = Array.init 9 (fun i () -> i * i) in
  List.iter
    (fun shards ->
      let results, stats =
        Pool.run_tracees ~config:(Pool.config ~shards ()) jobs
      in
      Alcotest.(check (array int))
        (Printf.sprintf "tracee order at %d shards" shards)
        (Array.init 9 (fun i -> i * i))
        results;
      Alcotest.(check int) "stats count tracees" 9 stats.Pool.p_tracees;
      Alcotest.(check int) "every tracee owned by a shard" 9
        (Array.fold_left (fun acc sh -> acc + sh.Pool.sh_tracees) 0
           stats.Pool.p_shards))
    [ 1; 2; 4 ]

exception Tracee_boom of int

let test_run_tracees_exception () =
  (* Tracees 1 and 3 both fail; the lowest-numbered one wins whatever
     order the shards ran in. *)
  let jobs =
    Array.init 5 (fun i () ->
        if i = 1 || i = 3 then raise (Tracee_boom i) else i)
  in
  Alcotest.check_raises "lowest failing tracee propagates" (Tracee_boom 1)
    (fun () -> ignore (Pool.run_tracees ~config:(Pool.config ~shards:3 ()) jobs))

let test_shard_of_tracee_stable () =
  for t = 0 to 20 do
    for shards = 1 to 6 do
      let s = Pool.shard_of_tracee ~shards t in
      Alcotest.(check bool) "in range" true (s >= 0 && s < shards);
      Alcotest.(check int) "stable" s (Pool.shard_of_tracee ~shards t)
    done
  done;
  Alcotest.(check int) "round robin" 1 (Pool.shard_of_tracee ~shards:4 5)

let test_mirror_stats () =
  let _, stats =
    Pool.run_tracees
      ~config:(Pool.config ~shards:2 ())
      (Array.init 5 (fun i () -> i))
  in
  let reg = Obs.Metrics.create () in
  Pool.mirror_stats stats reg;
  let assoc name = List.assoc name (Obs.Metrics.counter_values reg) in
  Alcotest.(check (float 1e-9)) "mt.shards" 2.0 (assoc "mt.shards");
  Alcotest.(check (float 1e-9)) "mt.tracees" 5.0 (assoc "mt.tracees");
  Alcotest.(check (float 1e-9)) "shard0 owns 0,2,4" 3.0 (assoc "mt.shard0.tracees");
  Alcotest.(check (float 1e-9)) "shard1 owns 1,3" 2.0 (assoc "mt.shard1.tracees");
  (* The imbalance probes ride along: a static 3/2 split of 5 items. *)
  Alcotest.(check (float 1e-9)) "mt.steals" 0.0 (assoc "mt.steals");
  Alcotest.(check (float 1e-9)) "mt.migrations" 0.0 (assoc "mt.migrations");
  Alcotest.(check (float 1e-9)) "mt.util_spread" (3.0 /. 2.5)
    (assoc "mt.util_spread")

(* run_tracees under the stealing policies: results still come back in
   tracee order and every claim is processed exactly once, whichever
   worker ran it. *)
let test_run_tracees_stealing_policies () =
  let n = 12 in
  let jobs = Array.init n (fun i () -> i * i) in
  List.iter
    (fun policy ->
      let results, stats =
        Pool.run_tracees ~config:(Pool.config ~shards:3 ~policy ()) jobs
      in
      Alcotest.(check (array int))
        (Pool.policy_name policy ^ ": tracee order preserved")
        (Array.init n (fun i -> i * i))
        results;
      Alcotest.(check int) "every claim ran exactly once" n
        (Array.fold_left (fun acc sh -> acc + sh.Pool.sh_items) 0
           stats.Pool.p_shards))
    [ Pool.Least_loaded; Pool.Steal ]

(* --- run_multi: equivalence with a serial Drivers.run loop --------- *)

let small_nginx () =
  D.nginx
    ~params:
      { Workloads.Nginx_model.default with connections = 2; requests_per_conn = 12 }
    ()

let fingerprint (m : D.measurement) =
  (m.D.m_cycles, m.D.m_traps, m.D.m_syscalls, m.D.m_metric)

let test_run_multi_matches_serial () =
  let app = small_nginx () in
  let tracees = 4 in
  let serial = Array.init tracees (fun _ -> D.run app D.Bastion_full) in
  let serial_cycles =
    Array.fold_left (fun acc (m : D.measurement) -> acc + m.D.m_cycles) 0 serial
  in
  List.iter
    (fun shards ->
      let m = D.run_multi ~shards ~tracees app D.Bastion_full in
      Alcotest.(check bool)
        (Printf.sprintf "per-tracee results identical at %d shards" shards)
        true
        (Array.for_all2
           (fun a b -> fingerprint a = fingerprint b)
           serial m.D.mm_tracees);
      Alcotest.(check int) "serial cycle total" serial_cycles m.D.mm_serial_cycles;
      Alcotest.(check bool) "makespan bounded by serial" true
        (m.D.mm_makespan_cycles <= m.D.mm_serial_cycles);
      if shards = 1 then
        Alcotest.(check int) "one shard: makespan == serial" serial_cycles
          m.D.mm_makespan_cycles)
    [ 1; 2; 3 ]

(* The scheduler axis: a tracee's session never outlives its executing
   domain, so placement must not change a single measured bit.  The
   job plan behind the makespan must account every cycle. *)
let test_run_multi_schedulers () =
  let app = small_nginx () in
  let tracees = 3 and shards = 2 in
  let serial = Array.init tracees (fun _ -> D.run app D.Bastion_full) in
  let serial_cycles =
    Array.fold_left (fun acc (m : D.measurement) -> acc + m.D.m_cycles) 0 serial
  in
  List.iter
    (fun policy ->
      let m = D.run_multi ~scheduler:policy ~shards ~tracees app D.Bastion_full in
      Alcotest.(check bool)
        (Pool.policy_name policy ^ ": per-tracee results identical")
        true
        (Array.for_all2
           (fun a b -> fingerprint a = fingerprint b)
           serial m.D.mm_tracees);
      Alcotest.(check bool) "plan carries the policy" true
        (m.D.mm_plan.Pool.jp_policy = policy);
      Alcotest.(check int) "makespan is the plan's" m.D.mm_plan.Pool.jp_makespan
        m.D.mm_makespan_cycles;
      Alcotest.(check int) "plan accounts every cycle" serial_cycles
        (Array.fold_left ( + ) 0 m.D.mm_plan.Pool.jp_shard_cycles);
      Alcotest.(check bool) "makespan bounded by serial" true
        (m.D.mm_makespan_cycles <= serial_cycles))
    Pool.all_policies;
  (* Lane stamping relies on the static pin, so the combination of
     shard recorders and a stealing scheduler is a usage error. *)
  Alcotest.check_raises "recorders require the static scheduler"
    (Invalid_argument
       "Drivers.run_multi: shard_recorders requires the static scheduler")
    (fun () ->
      ignore
        (D.run_multi ~scheduler:Pool.Steal ~shards:2 ~tracees:2
           ~shard_recorders:(Array.init 2 (fun _ -> Obs.Recorder.create ()))
           app D.Bastion_full))

let test_run_multi_recorders () =
  let app = small_nginx () in
  Alcotest.check_raises "recorder array must match shard count"
    (Invalid_argument
       "Drivers.run_multi: shard_recorders must have one slot per shard")
    (fun () ->
      ignore
        (D.run_multi ~shards:2 ~tracees:2
           ~shard_recorders:[| Obs.Recorder.create () |]
           app D.Bastion_full));
  (* With one recorder per shard, observation still changes nothing. *)
  let serial = D.run app D.Bastion_full in
  let recorders = Array.init 2 (fun _ -> Obs.Recorder.create ~metrics:true ()) in
  let m =
    D.run_multi ~shards:2 ~tracees:3 ~shard_recorders:recorders app
      D.Bastion_full
  in
  Array.iter
    (fun t ->
      Alcotest.(check bool) "observed tracee matches unobserved serial" true
        (fingerprint t = fingerprint serial))
    m.D.mm_tracees

(* --- the sharded Table 6 matrix ------------------------------------ *)

let outcome_sig = function
  | Attacks.Runner.Succeeded -> "S"
  | Attacks.Runner.Inert -> "I"
  | Attacks.Runner.Blocked f -> "B:" ^ Machine.fault_to_string f

let row_sig (r : Attacks.Runner.row) =
  ( r.r_attack.a_id,
    outcome_sig r.r_undefended,
    outcome_sig r.r_ct,
    outcome_sig r.r_cf,
    outcome_sig r.r_ai,
    outcome_sig r.r_full )

let test_table6_sharded_matches_serial () =
  let serial = List.map row_sig (Attacks.Runner.evaluate_all ()) in
  let rows, stats = Attacks.Runner.evaluate_all_sharded ~shards:4 () in
  let sharded = List.map row_sig rows in
  Alcotest.(check int) "same row count" (List.length serial) (List.length sharded);
  List.iter2
    (fun (id, u, ct, cf, ai, full) (id', u', ct', cf', ai', full') ->
      Alcotest.(check string) "same attack order" id id';
      Alcotest.(check string) (id ^ " undefended") u u';
      Alcotest.(check string) (id ^ " ct") ct ct';
      Alcotest.(check string) (id ^ " cf") cf cf';
      Alcotest.(check string) (id ^ " ai") ai ai';
      Alcotest.(check string) (id ^ " full") full full')
    serial sharded;
  Alcotest.(check int) "every row ran on some shard"
    (List.length serial)
    (Array.fold_left (fun acc sh -> acc + sh.Pool.sh_tracees) 0
       stats.Pool.p_shards);
  (* The stealing scheduler reproduces the matrix too — attack rows
     are whole-tracee jobs, so placement cannot change a verdict. *)
  let rows_steal, _ =
    Attacks.Runner.evaluate_all_sharded ~policy:Pool.Steal ~shards:4 ()
  in
  Alcotest.(check bool) "steal-scheduled matrix identical" true
    (List.map row_sig rows_steal = serial)

(* --- the Api.protect ~validate lint gate --------------------------- *)

let test_validate_gate () =
  (* The canonical registration (Drivers arms it at module init; arm it
     here explicitly so this test stands alone). *)
  Bastion_analysis.Lint.register_api_validator ();
  let prog = Test_fastpath.chain_program 3 1 in
  (* Sound metadata sails through. *)
  ignore (Bastion.Api.protect ~validate:true prog);
  (* A failing validator turns into Validation_failed. *)
  Bastion.Api.set_validator (Some (fun _ -> [ "synthetic diagnostic" ]));
  (match Bastion.Api.protect ~validate:true prog with
  | exception Bastion.Api.Validation_failed [ "synthetic diagnostic" ] -> ()
  | exception Bastion.Api.Validation_failed msgs ->
    Alcotest.fail ("wrong diagnostics: " ^ String.concat "; " msgs)
  | _ -> Alcotest.fail "failing validator did not stop protect");
  (* Default remains off: no validation, no raise. *)
  ignore (Bastion.Api.protect prog);
  (* validate:true with no validator registered is a usage error. *)
  Bastion.Api.set_validator None;
  (match Bastion.Api.protect ~validate:true prog with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "validate without a validator should be rejected");
  (* Restore the real gate for the rest of the suite. *)
  Bastion_analysis.Lint.register_api_validator ()

(* --- the committed bench artifact ---------------------------------- *)

let test_bench_parallel_artifact () =
  let path = "../BENCH_parallel_monitor.json" in
  if not (Sys.file_exists path) then
    Alcotest.fail
      "BENCH_parallel_monitor.json missing (run bench/main.exe --json-parallel)";
  let doc = Report.Json.of_file path in
  let open Report.Json in
  (match member "schema" doc with
  | Some (Str "bastion-bench-parallel/1") -> ()
  | _ -> Alcotest.fail "bad or missing schema field");
  let results =
    match Option.bind (member "results" doc) to_list with
    | Some rs -> rs
    | None -> Alcotest.fail "missing results list"
  in
  Alcotest.(check bool) "at least shard counts 1..4 present" true
    (List.length results >= 3);
  let speedup_at shards =
    List.find_map
      (fun r ->
        match member "shards" r with
        | Some (Num s) when int_of_float s = shards ->
          Option.bind (member "modelled_speedup" r) to_float
        | _ -> None)
      results
  in
  List.iter
    (fun r ->
      match (member "shards" r, member "matches_serial" r) with
      | Some (Num s), Some (Bool ok) ->
        Alcotest.(check bool)
          (Printf.sprintf "shards=%d matches serial" (int_of_float s))
          true ok
      | _ -> Alcotest.fail "result row missing shards/matches_serial")
    results;
  (match speedup_at 1 with
  | Some s ->
    Alcotest.(check (float 1e-9)) "1 shard is exactly serial" 1.0 s
  | None -> Alcotest.fail "no shards=1 row");
  match speedup_at 4 with
  | Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "4 shards >= 2x modelled speedup (got %.2f)" s)
      true (s >= 2.0)
  | None -> Alcotest.fail "no shards=4 row"

let suites =
  [
    ( "mt-queue",
      [
        Alcotest.test_case "FIFO order and statistics" `Quick
          test_queue_fifo_and_stats;
        Alcotest.test_case "close semantics" `Quick test_queue_close_semantics;
        Alcotest.test_case "arrival stamps ride the queue" `Quick
          test_queue_arrival_stamps;
        Alcotest.test_case "queue telemetry as registry probes" `Quick
          test_queue_register_probes;
        Alcotest.test_case "try_push on a full queue" `Quick
          test_queue_try_push_full;
        Alcotest.test_case "backpressure blocks, never drops" `Quick
          test_backpressure_blocks_never_drops;
        Alcotest.test_case "deque: owner pops front, thief steals back" `Quick
          test_deque_owner_and_thief;
        Alcotest.test_case "cell: single-shot blocking handoff" `Quick
          test_cell_handoff;
      ] );
    ( "mt-pool",
      [
        Alcotest.test_case "stream matches serial (small)" `Quick
          test_stream_matches_serial_small;
        Alcotest.test_case "stream rejects bad tracee ids" `Quick
          test_stream_rejects_bad_tracee;
        QCheck_alcotest.to_alcotest prop_stream_equivalence;
        QCheck_alcotest.to_alcotest prop_stream_policy_equivalence;
        Alcotest.test_case "elephant stream: steal levels the pool" `Quick
          test_stream_steal_beats_static;
        Alcotest.test_case "plan_jobs across the policies" `Quick
          test_plan_jobs_policies;
        Alcotest.test_case "feeder exception wins over worker errors" `Quick
          test_pool_feeder_exception_wins;
        Alcotest.test_case "run_tracees merges in tracee order" `Quick
          test_run_tracees_order;
        Alcotest.test_case "run_tracees steals whole claims" `Quick
          test_run_tracees_stealing_policies;
        Alcotest.test_case "lowest failing tracee propagates" `Quick
          test_run_tracees_exception;
        Alcotest.test_case "shard assignment is stable" `Quick
          test_shard_of_tracee_stable;
        Alcotest.test_case "stats mirror into the metrics registry" `Quick
          test_mirror_stats;
      ] );
    ( "mt-drivers",
      [
        Alcotest.test_case "run_multi matches a serial run loop" `Quick
          test_run_multi_matches_serial;
        Alcotest.test_case "run_multi under every scheduler" `Quick
          test_run_multi_schedulers;
        Alcotest.test_case "per-shard recorders" `Quick test_run_multi_recorders;
        Alcotest.test_case "sharded Table 6 matches serial" `Slow
          test_table6_sharded_matches_serial;
      ] );
    ( "mt-gate",
      [ Alcotest.test_case "Api.protect ~validate lint gate" `Quick
          test_validate_gate ] );
    ( "mt-bench",
      [
        Alcotest.test_case "parallel bench artifact shape" `Quick
          test_bench_parallel_artifact;
      ] );
  ]
