(* Tests for the flight recorder (lib/obs): the ring buffer, the
   metrics registry and its percentile maths, the monitor's stats
   accessors, the non-finite JSON fix, and the end-to-end acceptance
   runs — Chrome-trace structure, registry-vs-legacy agreement, and
   recorder-on/off invariance of cycles and the Table 6 matrix. *)

module D = Workloads.Drivers
module J = Report.Json

(* --- ring buffer ------------------------------------------------------ *)

let test_ring_bounds () =
  let r = Obs.Ring.create 4 in
  Alcotest.(check int) "capacity" 4 (Obs.Ring.capacity r);
  Alcotest.(check (list int)) "empty" [] (Obs.Ring.to_list r);
  for i = 0 to 9 do
    Obs.Ring.push r i
  done;
  Alcotest.(check int) "length capped" 4 (Obs.Ring.length r);
  Alcotest.(check int) "pushes counted" 10 (Obs.Ring.pushed r);
  Alcotest.(check int) "overwrites counted" 6 (Obs.Ring.dropped r);
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 6; 7; 8; 9 ]
    (Obs.Ring.to_list r);
  let seen = ref [] in
  Obs.Ring.iter r (fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "iter order matches to_list" [ 6; 7; 8; 9 ]
    (List.rev !seen);
  Obs.Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Obs.Ring.length r);
  Obs.Ring.push r 42;
  Alcotest.(check (list int)) "usable after clear" [ 42 ] (Obs.Ring.to_list r);
  Alcotest.(check bool) "zero capacity rejected" true
    (match Obs.Ring.create 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- metrics registry ------------------------------------------------- *)

let test_counters_and_probes () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "a.count" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Metrics.value c);
  (* find-or-create: the same name is the same counter *)
  Obs.Metrics.incr (Obs.Metrics.counter reg "a.count");
  Alcotest.(check int) "same name, same counter" 43 (Obs.Metrics.value c);
  let ext = ref 7.0 in
  Obs.Metrics.register_probe reg "b.external" (fun () -> !ext);
  let assoc name = List.assoc name (Obs.Metrics.counter_values reg) in
  Alcotest.(check (float 1e-9)) "probe sampled" 7.0 (assoc "b.external");
  ext := 9.5;
  Alcotest.(check (float 1e-9)) "probe re-sampled at read time" 9.5
    (assoc "b.external");
  let names = List.map fst (Obs.Metrics.counter_values reg) in
  Alcotest.(check (list string)) "sorted by name" (List.sort compare names) names

let test_histogram_basics () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg "lat" in
  for v = 1 to 100 do
    Obs.Metrics.observe h v
  done;
  let s = Obs.Metrics.summarize h in
  Alcotest.(check int) "count" 100 s.Obs.Metrics.s_count;
  Alcotest.(check int) "min" 1 s.Obs.Metrics.s_min;
  Alcotest.(check int) "max" 100 s.Obs.Metrics.s_max;
  Alcotest.(check (float 1e-9)) "mean" 50.5 s.Obs.Metrics.s_mean;
  Alcotest.(check bool) "p50 <= p90" true (s.Obs.Metrics.s_p50 <= s.Obs.Metrics.s_p90);
  Alcotest.(check bool) "p90 <= p99" true (s.Obs.Metrics.s_p90 <= s.Obs.Metrics.s_p99);
  Alcotest.(check bool) "negatives clamp to 0" true
    (let h' = Obs.Metrics.histogram reg "neg" in
     Obs.Metrics.observe h' (-5);
     Obs.Metrics.histogram_min h' = 0)

(* qcheck: for any observation set, the percentile summary is monotone
   (p50 <= p90 <= p99) and bounded by the observed min/max, and the
   percentile function itself is monotone in p. *)
let prop_percentiles_monotone_bounded =
  QCheck.Test.make ~count:300
    ~name:"histogram percentiles monotone and bounded by min/max"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 200) (int_bound 1_000_000))
        (pair (int_bound 100) (int_bound 100)))
    (fun (values, (a, b)) ->
      let reg = Obs.Metrics.create () in
      let h = Obs.Metrics.histogram reg "h" in
      List.iter (Obs.Metrics.observe h) values;
      let s = Obs.Metrics.summarize h in
      let fmin = float_of_int s.Obs.Metrics.s_min
      and fmax = float_of_int s.Obs.Metrics.s_max in
      let lo = float_of_int (min a b) /. 100.0
      and hi = float_of_int (max a b) /. 100.0 in
      fmin <= s.Obs.Metrics.s_p50
      && s.Obs.Metrics.s_p50 <= s.Obs.Metrics.s_p90
      && s.Obs.Metrics.s_p90 <= s.Obs.Metrics.s_p99
      && s.Obs.Metrics.s_p99 <= fmax
      && Obs.Metrics.percentile h lo <= Obs.Metrics.percentile h hi)

(* p99.9 with a heavy tail: 990 fast traps, 9 in the ~1000-cycle
   bucket, one 10^6 outlier.  Rank 0.999 lands among the 1000s, so
   sub-bucket interpolation must report a value inside that bucket —
   not clamp flat to the outlier max the way a bucket-ceiling estimate
   would. *)
let test_p999_heavy_tail () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg "tail" in
  for _ = 1 to 990 do
    Obs.Metrics.observe h 8
  done;
  for _ = 1 to 9 do
    Obs.Metrics.observe h 1000
  done;
  Obs.Metrics.observe h 1_000_000;
  let s = Obs.Metrics.summarize h in
  Alcotest.(check int) "count" 1000 s.Obs.Metrics.s_count;
  Alcotest.(check bool) "p99 in the fast bucket" true (s.Obs.Metrics.s_p99 <= 15.0);
  Alcotest.(check bool) "p999 above p99" true
    (s.Obs.Metrics.s_p999 > s.Obs.Metrics.s_p99);
  Alcotest.(check bool) "p999 inside the 1000s bucket" true
    (s.Obs.Metrics.s_p999 >= 512.0 && s.Obs.Metrics.s_p999 <= 1023.0);
  Alcotest.(check bool) "p999 is not the outlier max" true
    (s.Obs.Metrics.s_p999 < float_of_int s.Obs.Metrics.s_max)

(* --- shard/tracee lanes on events ------------------------------------- *)

let test_event_lane_roundtrip () =
  let r = Obs.Recorder.create ~tracing:true () in
  let _ =
    D.run ~recorder:r (D.nginx ~params:Workloads.Nginx_model.small ()) D.Bastion_full
  in
  match Obs.Recorder.trap_events r with
  | [] -> Alcotest.fail "no trap events recorded"
  | ev :: _ -> (
    (* Solo runs keep lane 0/0, and zero lanes are not emitted: the
       audit-log byte format predating lanes is preserved. *)
    Alcotest.(check int) "solo shard lane" 0 ev.Obs.Event.ev_shard;
    Alcotest.(check int) "solo tracee lane" 0 ev.Obs.Event.ev_tracee;
    Alcotest.(check bool) "zero lanes stay off the wire" true
      (J.member "shard" (Obs.Event.to_json ev) = None
      && J.member "tracee" (Obs.Event.to_json ev) = None);
    (match Obs.Event.of_json (Obs.Event.to_json ev) with
    | Error e -> Alcotest.fail e
    | Ok ev' ->
      Alcotest.(check int) "lane-less record parses as lane 0" 0
        ev'.Obs.Event.ev_shard);
    let tagged = { ev with Obs.Event.ev_shard = 3; ev_tracee = 17 } in
    let json = Obs.Event.to_json tagged in
    Alcotest.(check bool) "nonzero lanes emitted" true
      (J.member "shard" json <> None && J.member "tracee" json <> None);
    match Obs.Event.of_json json with
    | Error e -> Alcotest.fail e
    | Ok ev' ->
      Alcotest.(check int) "shard survives the round trip" 3
        ev'.Obs.Event.ev_shard;
      Alcotest.(check int) "tracee survives the round trip" 17
        ev'.Obs.Event.ev_tracee)

(* --- time-series emitter ---------------------------------------------- *)

let test_timeseries_of_events () =
  let r = Obs.Recorder.create ~tracing:true () in
  let _ =
    D.run ~recorder:r (D.sqlite ~params:Workloads.Sqlite_model.small ()) D.Bastion_full
  in
  let events = Obs.Recorder.trap_events r in
  Alcotest.(check bool) "workload recorded traps" true (events <> []);
  let rows = Obs.Timeseries.of_events ~interval:50_000 events in
  let traps =
    List.fold_left
      (fun acc row ->
        acc + int_of_float (List.assoc "traps" row.Obs.Timeseries.r_fields))
      0 rows
  in
  Alcotest.(check int) "every trap lands in exactly one window"
    (List.length events) traps;
  let ts = List.map (fun row -> row.Obs.Timeseries.r_t) rows in
  Alcotest.(check bool) "rows in time order" true (List.sort compare ts = ts);
  let path = Filename.temp_file "bastion_stats" ".jsonl" in
  Obs.Timeseries.write_jsonl rows path;
  (match Obs.Timeseries.read path with
  | Error e -> Alcotest.fail e
  | Ok (_header, rows') ->
    Alcotest.(check int) "JSONL round-trips every row" (List.length rows)
      (List.length rows'));
  Sys.remove path

(* --- monitor stats accessors ------------------------------------------ *)

let test_monitor_cache_and_depth_stats () =
  let session = Test_fastpath.run_chain ~trap_cache:true 8 30 in
  let m = session.Bastion.Api.monitor in
  let hits, misses, rate = Bastion.Monitor.cache_stats m in
  Alcotest.(check bool) "repeated traps hit" true (hits > 0);
  Alcotest.(check int) "every trap probes the cache" m.Bastion.Monitor.traps_checked
    (hits + misses);
  Alcotest.(check (float 1e-9)) "rate = hits / probes"
    (float_of_int hits /. float_of_int (hits + misses))
    rate;
  (match Bastion.Monitor.depth_stats m with
  | None -> Alcotest.fail "depth_stats None after verified traps"
  | Some (dmin, dmean, dmax) ->
    Alcotest.(check bool) "1 <= min" true (dmin >= 1);
    Alcotest.(check bool) "min <= mean <= max" true
      (float_of_int dmin <= dmean && dmean <= float_of_int dmax);
    Alcotest.(check bool) "deep chain walked" true (dmax >= 8));
  (* Cache off: the accessors stay well-defined. *)
  let off = Test_fastpath.run_chain ~trap_cache:false 8 30 in
  let h0, m0, r0 = Bastion.Monitor.cache_stats off.Bastion.Api.monitor in
  Alcotest.(check int) "no hits with cache off" 0 h0;
  Alcotest.(check int) "no misses with cache off" 0 m0;
  Alcotest.(check (float 1e-9)) "rate 0 before any probe" 0.0 r0

let test_depth_stats_empty () =
  let protected_prog = Bastion.Api.protect (Test_fastpath.chain_program 3 1) in
  let session = Bastion.Api.launch protected_prog () in
  Alcotest.(check bool) "no traps yet: depth_stats None" true
    (Bastion.Monitor.depth_stats session.Bastion.Api.monitor = None)

(* --- non-finite JSON numbers (regression) ----------------------------- *)

let test_json_nonfinite_emits_null () =
  Alcotest.(check string) "nan emits null" "null\n" (J.to_string (J.Num Float.nan));
  Alcotest.(check string) "inf emits null" "null"
    (J.to_compact_string (J.Num Float.infinity));
  Alcotest.(check string) "-inf emits null" "null"
    (J.to_compact_string (J.Num Float.neg_infinity));
  (* The emitted document must stay parseable. *)
  let doc = J.Obj [ ("bad", J.Num (0.0 /. 0.0)); ("good", J.Num 1.5) ] in
  let back = J.of_string (J.to_string doc) in
  Alcotest.(check bool) "nan round-trips as null" true
    (J.member "bad" back = Some J.Null);
  Alcotest.(check bool) "finite neighbour preserved" true
    (J.member "good" back = Some (J.Num 1.5))

let test_json_compact_single_line () =
  let doc =
    J.Obj
      [
        ("s", J.Str "line\nbreak");
        ("l", J.List [ J.Num 1.0; J.Bool false; J.Null ]);
        ("o", J.Obj [ ("k", J.Num 2.5) ]);
      ]
  in
  let s = J.to_compact_string doc in
  Alcotest.(check bool) "single line" true (not (String.contains s '\n'));
  Alcotest.check
    (Alcotest.testable (Fmt.of_to_string J.to_string) ( = ))
    "compact round-trips" doc (J.of_string s)

(* --- control characters in strings (regression) ------------------------ *)

let test_json_control_char_roundtrip () =
  (* Every control character must survive emit -> parse, in both the
     pretty and the compact emitter. *)
  let all_controls = String.init 0x20 Char.chr in
  let doc = J.Obj [ ("s", J.Str all_controls) ] in
  let check_emitter name emit =
    match J.member "s" (J.of_string (emit doc)) with
    | Some (J.Str back) ->
      Alcotest.(check string) (name ^ ": all 32 control chars round-trip")
        all_controls back
    | _ -> Alcotest.fail (name ^ ": string member lost")
  in
  check_emitter "pretty" J.to_string;
  check_emitter "compact" J.to_compact_string;
  (* The short escapes emit as themselves, not as \u forms. *)
  let s = J.to_compact_string (J.Str "\b\012\n\r\t") in
  Alcotest.(check string) "short escapes preferred" {|"\b\f\n\r\t"|} s;
  (* Foreign documents may use \b and \f; both parse. *)
  Alcotest.(check bool) "parses \\b and \\f" true
    (J.of_string {|"a\bz\fq"|} = J.Str "a\bz\012q");
  (* A malformed \u escape is a parse error, not a crash. *)
  match J.of_string {|"\uZZZZ"|} with
  | exception J.Parse_error _ -> ()
  | _ -> Alcotest.fail "bad \\u escape accepted"

(* --- recorder arming and the disabled path ---------------------------- *)

let test_recorder_unarmed_counts_only () =
  let r = Obs.Recorder.create () in
  Alcotest.(check bool) "off by default" false (Obs.Recorder.armed r);
  Obs.Recorder.count_trap r ~denied:false;
  Obs.Recorder.count_trap r ~denied:false;
  Obs.Recorder.count_trap r ~denied:true;
  let assoc name =
    List.assoc name (Obs.Metrics.counter_values (Obs.Recorder.metrics r))
  in
  Alcotest.(check (float 1e-9)) "traps counted" 3.0 (assoc "obs.traps");
  Alcotest.(check (float 1e-9)) "allowed counted" 2.0 (assoc "obs.allowed");
  Alcotest.(check (float 1e-9)) "denied counted" 1.0 (assoc "obs.denied");
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Recorder.items r));
  Obs.Recorder.set_on_event r (Some (fun _ -> ()));
  Alcotest.(check bool) "callback arms" true (Obs.Recorder.armed r);
  Obs.Recorder.set_on_event r None;
  Alcotest.(check bool) "disarmed again" false (Obs.Recorder.armed r);
  Alcotest.(check bool) "tracing arms" true
    (Obs.Recorder.armed (Obs.Recorder.create ~tracing:true ()));
  Alcotest.(check bool) "metrics arm" true
    (Obs.Recorder.armed (Obs.Recorder.create ~metrics:true ()))

(* --- JSONL audit sink ------------------------------------------------- *)

let test_jsonl_lines_parse () =
  let recorder = Obs.Recorder.create ~tracing:true () in
  let protected_prog = Bastion.Api.protect (Test_fastpath.chain_program 4 10) in
  let session = Bastion.Api.launch ~recorder protected_prog () in
  (match Machine.run session.Bastion.Api.machine with
  | Machine.Exited _ -> ()
  | Machine.Faulted f -> Alcotest.fail (Machine.fault_to_string f));
  let items = Obs.Recorder.items recorder in
  Alcotest.(check bool) "recorded something" true (items <> []);
  let path = Filename.temp_file "bastion_obs" ".jsonl" in
  Obs.Recorder.write_jsonl recorder path;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  Alcotest.(check int) "one line per item" (List.length items) (List.length !lines);
  List.iter
    (fun line ->
      match J.of_string line with
      | J.Obj fields -> Alcotest.(check bool) "kind field" true (List.mem_assoc "kind" fields)
      | _ -> Alcotest.fail "JSONL line is not an object"
      | exception J.Parse_error e -> Alcotest.fail ("unparseable JSONL line: " ^ e))
    !lines

(* --- denied traps carry the failing phase ----------------------------- *)

let test_denied_trap_records_failed_span () =
  (* Find any catalog attack whose full-BASTION denial comes from a
     monitor trap (as opposed to a seccomp KILL, which never traps). *)
  let denied_event =
    List.find_map
      (fun (a : Attacks.Attack.t) ->
        let r = Obs.Recorder.create ~tracing:true () in
        match Attacks.Runner.run ~recorder:r a Attacks.Runner.Full_bastion with
        | Attacks.Runner.Blocked _ -> (
          match List.filter Obs.Event.denied (Obs.Recorder.trap_events r) with
          | [] -> None
          | evs -> Some (List.nth evs (List.length evs - 1)))
        | _ -> None)
      Attacks.Catalog.all
  in
  match denied_event with
  | None -> Alcotest.fail "no attack produced a denied trap event"
  | Some ev ->
    (match ev.Obs.Event.ev_verdict with
    | Obs.Event.Denied { d_context; _ } ->
      Alcotest.(check bool) "denial names its context" true (d_context <> "")
    | Obs.Event.Allowed -> Alcotest.fail "denied event carries Allowed verdict");
    Alcotest.(check bool) "a phase span failed" true
      (List.exists
         (fun (sp : Obs.Event.span) -> sp.Obs.Event.sp_outcome = Obs.Event.Failed)
         ev.Obs.Event.ev_spans)

(* --- acceptance: the Chrome trace of a real workload ------------------ *)

let float_arg key e =
  match Option.bind (J.member "args" e) (J.member key) with
  | Some (J.Num f) -> Some f
  | _ -> None

let test_chrome_trace_acceptance () =
  let recorder = Obs.Recorder.create ~tracing:true ~metrics:true () in
  let m = D.run ~recorder (D.nginx ()) D.Bastion_full in
  let path = Filename.temp_file "bastion_nginx" ".trace.json" in
  Obs.Chrome.write recorder path;
  let doc = J.of_file path in
  Sys.remove path;
  (match J.member "schema" doc with
  | Some (J.Str s) -> Alcotest.(check string) "schema" Obs.Chrome.schema s
  | _ -> Alcotest.fail "missing schema");
  let events =
    match Option.bind (J.member "traceEvents" doc) J.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "missing traceEvents"
  in
  (* B/E events balance like a stack: depth never negative, ends at 0. *)
  let final_depth =
    List.fold_left
      (fun depth e ->
        match J.member "ph" e with
        | Some (J.Str "B") -> depth + 1
        | Some (J.Str "E") ->
          Alcotest.(check bool) "E never precedes its B" true (depth > 0);
          depth - 1
        | _ -> depth)
      0 events
  in
  Alcotest.(check int) "B/E balanced" 0 final_depth;
  (* Every trap has all three phase spans nested under it. *)
  let trap_begins =
    List.filter
      (fun e ->
        J.member "cat" e = Some (J.Str "trap") && J.member "ph" e = Some (J.Str "B"))
      events
  in
  Alcotest.(check int) "one trap span per monitor trap" m.D.m_traps
    (List.length trap_begins);
  let phases_of_seq = Hashtbl.create 1024 in
  List.iter
    (fun e ->
      if J.member "cat" e = Some (J.Str "phase") && J.member "ph" e = Some (J.Str "B")
      then
        match (float_arg "trap_seq" e, J.member "name" e) with
        | Some seq, Some (J.Str name) ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt phases_of_seq seq)
          in
          Hashtbl.replace phases_of_seq seq (name :: prev)
        | _ -> Alcotest.fail "phase span without trap_seq/name")
    events;
  List.iter
    (fun e ->
      match float_arg "seq" e with
      | None -> Alcotest.fail "trap span without seq"
      | Some seq ->
        let phases =
          List.sort compare (Option.value ~default:[] (Hashtbl.find_opt phases_of_seq seq))
        in
        Alcotest.(check (list string))
          (Printf.sprintf "trap %g has CT/CF/AI spans" seq)
          [ "AI"; "CF"; "CT" ] phases)
    trap_begins;
  (* The embedded registry snapshot equals the legacy accessors. *)
  let counters =
    match Option.bind (J.member "metrics" doc) (J.member "counters") with
    | Some (J.Obj fields) -> fields
    | _ -> Alcotest.fail "missing metrics.counters"
  in
  let counter name =
    match List.assoc_opt name counters with
    | Some (J.Num f) -> f
    | _ -> Alcotest.fail ("missing counter " ^ name)
  in
  let tracer = m.D.m_process.Kernel.Process.tracer in
  Alcotest.(check (float 1e-9)) "ptrace.calls_made matches legacy"
    (float_of_int tracer.Kernel.Ptrace.calls_made)
    (counter "ptrace.calls_made");
  Alcotest.(check (float 1e-9)) "ptrace.words_read matches legacy"
    (float_of_int tracer.Kernel.Ptrace.words_read)
    (counter "ptrace.words_read");
  let monitor =
    match m.D.m_monitor with Some mo -> mo | None -> Alcotest.fail "no monitor"
  in
  let hits, misses, _ = Bastion.Monitor.cache_stats monitor in
  Alcotest.(check (float 1e-9)) "cache.hits matches cache_stats"
    (float_of_int hits) (counter "cache.hits");
  Alcotest.(check (float 1e-9)) "cache.misses matches cache_stats"
    (float_of_int misses) (counter "cache.misses");
  let mean_lookup, _, inserts =
    Bastion.Runtime.shadow_probe_stats monitor.Bastion.Monitor.runtime
  in
  Alcotest.(check (float 1e-9)) "shadow.inserts matches shadow_probe_stats"
    (float_of_int inserts) (counter "shadow.inserts");
  Alcotest.(check (float 1e-9)) "shadow.mean_probe_length matches" mean_lookup
    (counter "shadow.mean_probe_length");
  Alcotest.(check (float 1e-9)) "monitor.traps_checked matches measurement"
    (float_of_int m.D.m_traps)
    (counter "monitor.traps_checked");
  (* And the trace-summary reader agrees with the run. *)
  let s = Obs.Chrome.summarize doc in
  Alcotest.(check int) "summary trap count" m.D.m_traps s.Obs.Chrome.sum_traps;
  Alcotest.(check int) "summary denials" 0 s.Obs.Chrome.sum_denied;
  Alcotest.(check bool) "summary renders" true
    (String.length (Obs.Chrome.render_summary s) > 0)

(* --- invariance: observation never changes the run -------------------- *)

let test_recorder_cycle_invariance () =
  let app = D.nginx () in
  let plain = D.run app D.Bastion_full in
  let armed = Obs.Recorder.create ~tracing:true ~metrics:true () in
  let traced = D.run ~recorder:armed app D.Bastion_full in
  let unarmed = D.run ~recorder:(Obs.Recorder.create ()) app D.Bastion_full in
  List.iter
    (fun (label, (m : D.measurement)) ->
      Alcotest.(check int) (label ^ ": same cycles") plain.D.m_cycles m.D.m_cycles;
      Alcotest.(check int) (label ^ ": same traps") plain.D.m_traps m.D.m_traps;
      Alcotest.(check int) (label ^ ": same syscalls") plain.D.m_syscalls
        m.D.m_syscalls;
      Alcotest.(check (float 1e-9)) (label ^ ": same metric") plain.D.m_metric
        m.D.m_metric)
    [ ("tracing+metrics", traced); ("unarmed", unarmed) ]

let test_table6_invariant_under_recorder () =
  let plain = Test_fastpath.render_rows (Attacks.Runner.evaluate_all ()) in
  let recorder = Obs.Recorder.create ~tracing:true ~metrics:true () in
  let traced =
    Test_fastpath.render_rows (Attacks.Runner.evaluate_all ~recorder ())
  in
  Alcotest.(check string) "attack matrix byte-identical recorder on/off" plain traced

let suites =
  [
    ( "obs-ring",
      [ Alcotest.test_case "bounded ring semantics" `Quick test_ring_bounds ] );
    ( "obs-metrics",
      [
        Alcotest.test_case "counters and probes" `Quick test_counters_and_probes;
        Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
        Alcotest.test_case "p99.9 interpolates inside the tail bucket" `Quick
          test_p999_heavy_tail;
        Alcotest.test_case "event lanes round-trip, zero lanes sparse" `Slow
          test_event_lane_roundtrip;
        Alcotest.test_case "time-series emitter buckets the trap stream" `Slow
          test_timeseries_of_events;
        QCheck_alcotest.to_alcotest prop_percentiles_monotone_bounded;
      ] );
    ( "obs-monitor-stats",
      [
        Alcotest.test_case "cache_stats and depth_stats" `Quick
          test_monitor_cache_and_depth_stats;
        Alcotest.test_case "depth_stats empty before traps" `Quick
          test_depth_stats_empty;
      ] );
    ( "obs-json",
      [
        Alcotest.test_case "non-finite numbers emit null" `Quick
          test_json_nonfinite_emits_null;
        Alcotest.test_case "compact emitter round-trips" `Quick
          test_json_compact_single_line;
        Alcotest.test_case "control characters round-trip" `Quick
          test_json_control_char_roundtrip;
      ] );
    ( "obs-recorder",
      [
        Alcotest.test_case "unarmed recorder only counts" `Quick
          test_recorder_unarmed_counts_only;
        Alcotest.test_case "JSONL audit lines parse" `Quick test_jsonl_lines_parse;
        Alcotest.test_case "denied trap records failed span" `Slow
          test_denied_trap_records_failed_span;
      ] );
    ( "obs-acceptance",
      [
        Alcotest.test_case "nginx Chrome trace validates" `Slow
          test_chrome_trace_acceptance;
        Alcotest.test_case "cycles invariant under recorder" `Slow
          test_recorder_cycle_invariance;
        Alcotest.test_case "Table 6 invariant under recorder" `Slow
          test_table6_invariant_under_recorder;
      ] );
  ]
