(* The tiered trap-resolution pre-filter: the seccomp-stage flow
   automaton engine, the static extraction invariants, and the
   equivalence properties the tier split must preserve — tiered and
   full monitors produce fingerprint-identical verdicts, the tier
   totals account for every trap, and the Table 6 matrix is identical
   behind the pre-filter. *)

module S = Kernel.Seccomp
module Drivers = Workloads.Drivers
module Runner = Attacks.Runner

(* --- the automaton engine --------------------------------------------- *)

let mk_node ?(checks = []) ?(resolvable = true) ~rip ~sysno () : S.flow_node =
  {
    S.fn_rip = rip;
    fn_sysno = sysno;
    fn_checks = checks;
    fn_resolvable = resolvable;
    fn_succs = Hashtbl.create 4;
  }

(* A: start, unconstrained.  B: follows A, arg0 must be 1 or 2.
   C: follows B, unresolvable (a checked pointer).  D: follows C,
   indirect callsite (any indirectly-callable number, here 59). *)
let mk_automaton mode =
  let fa = S.flow_create ~mode in
  S.flow_add_node fa (mk_node ~rip:0x100L ~sysno:(Some 9) ());
  S.flow_add_node fa
    (mk_node ~rip:0x200L ~sysno:(Some 10) ~checks:[ (0, [ 1L; 2L ]) ] ());
  S.flow_add_node fa (mk_node ~rip:0x300L ~sysno:(Some 11) ~resolvable:false ());
  S.flow_add_node fa (mk_node ~rip:0x400L ~sysno:None ());
  S.flow_add_start fa 0x100L;
  S.flow_add_edge fa ~src:0x100L ~dst:0x200L;
  S.flow_add_edge fa ~src:0x200L ~dst:0x300L;
  S.flow_add_edge fa ~src:0x300L ~dst:0x400L;
  S.flow_add_indirect_sysno fa 59;
  fa

let decision =
  Alcotest.testable
    (fun fmt d ->
      Format.pp_print_string fmt
        (match d with
        | S.Flow_resolve -> "resolve"
        | S.Flow_fallthrough -> "fallthrough"
        | S.Flow_kill -> "kill"))
    ( = )

let test_engine_basics () =
  let fa = mk_automaton S.Flow_tiered in
  Alcotest.(check int) "node count" 4 (S.flow_node_count fa);
  Alcotest.(check int) "edge count" 3 (S.flow_edge_count fa);
  (* Start node resolves; its successor with an in-set argument too. *)
  Alcotest.check decision "start resolves" S.Flow_resolve
    (S.flow_eval fa ~sysno:9 ~rip:0x100L ~args:[||]);
  Alcotest.check decision "edge + in-set arg resolves" S.Flow_resolve
    (S.flow_eval fa ~sysno:10 ~rip:0x200L ~args:[| 2L |]);
  (* Unresolvable node: edge is fine but tiered mode must hand the
     trap to the full monitor. *)
  Alcotest.check decision "unresolvable node falls through" S.Flow_fallthrough
    (S.flow_eval fa ~sysno:11 ~rip:0x300L ~args:[||]);
  (* The monitor allowed it: resync, then the indirect node takes any
     indirectly-callable number. *)
  S.flow_note_allowed fa ~rip:0x300L;
  Alcotest.check decision "indirect node takes 59" S.Flow_resolve
    (S.flow_eval fa ~sysno:59 ~rip:0x400L ~args:[||]);
  Alcotest.check decision "indirect node rejects other numbers"
    S.Flow_fallthrough
    (S.flow_eval fa ~sysno:10 ~rip:0x400L ~args:[||]);
  let resolved, fallthroughs, kills = S.flow_stats fa in
  Alcotest.(check (triple int int int))
    "stats account for every step" (3, 2, 0)
    (resolved, fallthroughs, kills)

let test_engine_misses () =
  (* Tiered: every miss is a fallthrough, never a verdict. *)
  let fa = mk_automaton S.Flow_tiered in
  Alcotest.check decision "non-start first trap" S.Flow_fallthrough
    (S.flow_eval fa ~sysno:10 ~rip:0x200L ~args:[| 1L |]);
  Alcotest.check decision "unknown rip" S.Flow_fallthrough
    (S.flow_eval fa ~sysno:9 ~rip:0x999L ~args:[||]);
  ignore (S.flow_eval fa ~sysno:9 ~rip:0x100L ~args:[||]);
  Alcotest.check decision "wrong sysno at a known node" S.Flow_fallthrough
    (S.flow_eval fa ~sysno:11 ~rip:0x200L ~args:[| 1L |]);
  Alcotest.check decision "out-of-set argument" S.Flow_fallthrough
    (S.flow_eval fa ~sysno:10 ~rip:0x200L ~args:[| 3L |]);
  Alcotest.check decision "non-edge transition" S.Flow_fallthrough
    (S.flow_eval fa ~sysno:11 ~rip:0x300L ~args:[||]);
  (* Standalone: the same misses kill. *)
  let fa = mk_automaton S.Flow_standalone in
  Alcotest.check decision "standalone non-start kills" S.Flow_kill
    (S.flow_eval fa ~sysno:10 ~rip:0x200L ~args:[| 1L |]);
  ignore (S.flow_eval fa ~sysno:9 ~rip:0x100L ~args:[||]);
  Alcotest.check decision "standalone out-of-set kills" S.Flow_kill
    (S.flow_eval fa ~sysno:10 ~rip:0x200L ~args:[| 3L |]);
  (* Standalone has no fall-through tier, so [fn_resolvable] does not
     apply: edge-consistent calls at an unresolvable node are allowed
     (the checks are all the defense there is). *)
  ignore (S.flow_eval fa ~sysno:10 ~rip:0x200L ~args:[| 1L |]);
  Alcotest.check decision "standalone resolves an unresolvable node"
    S.Flow_resolve
    (S.flow_eval fa ~sysno:11 ~rip:0x300L ~args:[||])

let test_engine_resync () =
  let fa = mk_automaton S.Flow_tiered in
  ignore (S.flow_eval fa ~sysno:9 ~rip:0x100L ~args:[||]);
  (* A fallthrough does not advance the state: B is still the expected
     successor of A afterwards. *)
  Alcotest.check decision "miss leaves the state" S.Flow_fallthrough
    (S.flow_eval fa ~sysno:9 ~rip:0x999L ~args:[||]);
  Alcotest.check decision "state survived the miss" S.Flow_resolve
    (S.flow_eval fa ~sysno:10 ~rip:0x200L ~args:[| 1L |]);
  (* An allowed trap at an unknown callsite desynchronises: any node
     may resolve next (over-approximation, never a false kill). *)
  S.flow_note_allowed fa ~rip:0x999L;
  Alcotest.check decision "desync accepts any node" S.Flow_resolve
    (S.flow_eval fa ~sysno:9 ~rip:0x100L ~args:[||])

(* --- static extraction ------------------------------------------------- *)

let apps () =
  [ Drivers.nginx (); Drivers.sqlite (); Drivers.vsftpd () ]

(* Every spec must be a well-formed digraph: non-empty, starts and
   successors are nodes, and every node is reachable from the start
   set (the invariant the dead-flow-node lint enforces). *)
let test_extraction_invariants () =
  List.iter
    (fun (app : Drivers.app) ->
      List.iter
        (fun fs ->
          let name = Printf.sprintf "%s fs:%b" app.Drivers.app_name fs in
          let spec = Drivers.flow_spec_of app ~fs in
          let nodes =
            List.fold_left
              (fun acc (n : Defenses.Flow_prefilter.node_spec) ->
                Sil.Loc.Set.add n.ns_loc acc)
              Sil.Loc.Set.empty spec.sp_nodes
          in
          Alcotest.(check bool) (name ^ ": has nodes") true (spec.sp_nodes <> []);
          Alcotest.(check bool)
            (name ^ ": has starts") false
            (Sil.Loc.Set.is_empty spec.sp_starts);
          Alcotest.(check bool)
            (name ^ ": starts are nodes") true
            (Sil.Loc.Set.subset spec.sp_starts nodes);
          List.iter
            (fun (n : Defenses.Flow_prefilter.node_spec) ->
              Alcotest.(check bool)
                (name ^ ": successors are nodes") true
                (Sil.Loc.Set.subset n.ns_succs nodes))
            spec.sp_nodes;
          (* Reachability from the start set covers every node. *)
          let reached = ref Sil.Loc.Set.empty in
          let rec visit loc =
            if not (Sil.Loc.Set.mem loc !reached) then begin
              reached := Sil.Loc.Set.add loc !reached;
              match
                List.find_opt
                  (fun (n : Defenses.Flow_prefilter.node_spec) ->
                    Sil.Loc.compare n.ns_loc loc = 0)
                  spec.sp_nodes
              with
              | Some n -> Sil.Loc.Set.iter visit n.ns_succs
              | None -> ()
            end
          in
          Sil.Loc.Set.iter visit spec.sp_starts;
          Alcotest.(check int)
            (name ^ ": all nodes reachable from starts")
            (List.length spec.sp_nodes)
            (Sil.Loc.Set.cardinal !reached);
          let st = Defenses.Flow_prefilter.stats spec in
          Alcotest.(check int)
            (name ^ ": stats node count") (List.length spec.sp_nodes)
            st.st_nodes)
        [ false; true ])
    (apps ())

(* --- tier equivalence -------------------------------------------------- *)

let small_app name =
  Result.get_ok (Bastion_replay.Engine.app_of ~name ~scale:"small")

let app_names = [| "nginx"; "sqlite"; "vsftpd" |]

let monitored_defenses =
  [|
    Drivers.Bastion_ct; Drivers.Bastion_ct_cf; Drivers.Bastion_full;
    Drivers.Bastion_fs Bastion.Monitor.Fs_full;
  |]

let fingerprint (m : Drivers.measurement) =
  match m.Drivers.m_monitor with
  | Some mon -> Bastion.Metadata.fingerprint mon.Bastion.Monitor.meta
  | None -> "-"

(* Deploying the pre-filter must never change what the monitor judges
   — only where each trap is resolved.  For any workload, monitored
   defense and knob setting: the metadata fingerprint is identical,
   the run executes the same syscalls, the tiered tier totals account
   for exactly the baseline trap stream (resolved + fallthroughs, with
   the monitor seeing only the fallthroughs), and no benign trap is
   ever killed in either mode. *)
let prop_benign_tier_equivalence =
  QCheck.Test.make ~count:10 ~name:"tiered split accounts for every benign trap"
    QCheck.(pair (pair (int_range 0 2) (int_range 0 3)) (pair bool bool))
    (fun ((ai, di), (trap_cache, pre_resolve)) ->
      let app = small_app app_names.(ai) in
      let defense = monitored_defenses.(di) in
      let base = Drivers.run ~trap_cache ~pre_resolve app defense in
      let tiered =
        Drivers.run ~trap_cache ~pre_resolve ~prefilter:S.Flow_tiered app defense
      in
      let alone =
        Drivers.run ~trap_cache ~pre_resolve ~prefilter:S.Flow_standalone app
          defense
      in
      let stats m =
        match m.Drivers.m_monitor with
        | Some mon -> (
          match Bastion.Monitor.prefilter mon with
          | Some _ -> Bastion.Monitor.prefilter_stats mon
          | None -> (-1, -1, -1))
        | None -> (-1, -1, -1)
      in
      let t_res, t_ft, t_kill = stats tiered in
      let s_res, s_ft, s_kill = stats alone in
      String.equal (fingerprint base) (fingerprint tiered)
      && String.equal (fingerprint base) (fingerprint alone)
      && base.Drivers.m_syscalls = tiered.Drivers.m_syscalls
      && base.Drivers.m_syscalls = alone.Drivers.m_syscalls
      && t_res + t_ft = base.Drivers.m_traps
      && tiered.Drivers.m_traps = t_ft
      && t_kill = 0
      (* Standalone resolves the whole benign stream: the extraction
         over-approximates, so no benign trap is ever killed. *)
      && s_res = base.Drivers.m_traps
      && s_ft = 0 && s_kill = 0
      && alone.Drivers.m_traps = 0)

(* The Table 6 matrix is tier-invariant: the full monitor behind the
   tiered pre-filter blocks exactly what it blocks alone, under any
   knob setting, and a tiered deployment never lets a catalog attack
   through uncaught. *)
let prop_attack_tier_equivalence =
  QCheck.Test.make ~count:6 ~name:"tiered Table 6 verdicts match the full monitor"
    QCheck.(pair (int_range 0 (List.length Attacks.Catalog.all - 1)) (pair bool bool))
    (fun (i, (trap_cache, pre_resolve)) ->
      let attack = List.nth Attacks.Catalog.all i in
      let r = Runner.evaluate ~trap_cache ~pre_resolve attack in
      Runner.matches_expectation r
      && Runner.blocked r.r_full = Runner.blocked r.r_tiered
      && (not (Runner.blocked r.r_full))
         || Runner.catching_tier r <> Runner.Tier_uncaught)

let suites =
  [
    ( "prefilter",
      [
        Alcotest.test_case "automaton engine: edges, checks, tiers" `Quick
          test_engine_basics;
        Alcotest.test_case "automaton engine: miss semantics per mode" `Quick
          test_engine_misses;
        Alcotest.test_case "automaton engine: desync and resync" `Quick
          test_engine_resync;
        Alcotest.test_case "extraction yields a connected digraph" `Quick
          test_extraction_invariants;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_benign_tier_equivalence; prop_attack_tier_equivalence ] );
  ]
