(* Property-based tests (qcheck) on the core data structures and
   invariants, registered as alcotest cases. *)

let gen_addr = QCheck.map (fun n -> Int64.of_int (abs n land 0xFFFFF8)) QCheck.int
let gen_word = QCheck.map Int64.of_int QCheck.int

(* --- shadow memory behaves like a map -------------------------------- *)

let prop_shadow_model =
  QCheck.Test.make ~count:200 ~name:"shadow memory agrees with a model map"
    QCheck.(list (pair gen_addr gen_word))
    (fun ops ->
      let shadow = Bastion.Shadow_memory.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (addr, v) ->
          Bastion.Shadow_memory.set_shadow shadow ~addr ~value:v;
          Hashtbl.replace model addr v)
        ops;
      Hashtbl.fold
        (fun addr v acc ->
          acc && Bastion.Shadow_memory.shadow shadow ~addr = Some v)
        model true
      && Bastion.Shadow_memory.entry_count shadow = Hashtbl.length model)

let prop_shadow_growth =
  QCheck.Test.make ~count:20 ~name:"shadow memory survives growth"
    QCheck.(int_range 100 4000)
    (fun n ->
      let shadow = Bastion.Shadow_memory.create () in
      for i = 1 to n do
        Bastion.Shadow_memory.set_shadow shadow ~addr:(Int64.of_int (i * 8))
          ~value:(Int64.of_int (i * 3))
      done;
      let ok = ref true in
      for i = 1 to n do
        if
          Bastion.Shadow_memory.shadow shadow ~addr:(Int64.of_int (i * 8))
          <> Some (Int64.of_int (i * 3))
        then ok := false
      done;
      !ok)

(* Raw insert/find on the open-addressed table, with enough keys to
   force at least one [grow] (initial capacity is far below 3000):
   every inserted binding must survive the rehash, and the insert-probe
   counters must have seen every insert. *)
let prop_shadow_insert_roundtrip =
  QCheck.Test.make ~count:20 ~name:"insert/find roundtrip across grow"
    QCheck.(pair (int_range 200 3000) (int_range 1 1000))
    (fun (n, salt) ->
      let shadow = Bastion.Shadow_memory.create () in
      let key i = Int64.of_int ((i * 8) + (salt * 16)) in
      for i = 1 to n do
        Bastion.Shadow_memory.insert shadow (key i) (Int64.of_int (i + salt))
      done;
      let ok = ref true in
      for i = 1 to n do
        if Bastion.Shadow_memory.find shadow (key i) <> Some (Int64.of_int (i + salt))
        then ok := false
      done;
      !ok
      && Bastion.Shadow_memory.insert_count shadow >= n
      && Bastion.Shadow_memory.insert_probe_count shadow
         >= Bastion.Shadow_memory.insert_count shadow)

let prop_binding_key_injective =
  QCheck.Test.make ~count:500 ~name:"binding_key injective over valid (id,pos)"
    QCheck.(
      pair
        (pair (int_range 0 100000) (int_range 0 15))
        (pair (int_range 0 100000) (int_range 0 15)))
    (fun ((id1, pos1), (id2, pos2)) ->
      let k1 = Bastion.Shadow_memory.binding_key ~id:id1 ~pos:pos1 in
      let k2 = Bastion.Shadow_memory.binding_key ~id:id2 ~pos:pos2 in
      if id1 = id2 && pos1 = pos2 then Int64.equal k1 k2
      else not (Int64.equal k1 k2))

let prop_binding_keys_disjoint =
  QCheck.Test.make ~count:500 ~name:"binding keys never collide with addresses"
    QCheck.(pair (pair (int_range 0 100000) (int_range 0 15)) gen_addr)
    (fun ((id, pos), addr) ->
      not (Int64.equal (Bastion.Shadow_memory.binding_key ~id ~pos) addr))

(* --- machine memory ---------------------------------------------------- *)

let prop_memory_roundtrip =
  QCheck.Test.make ~count:200 ~name:"memory write/read roundtrip"
    QCheck.(list (pair gen_addr gen_word))
    (fun ops ->
      let mem = Machine.Memory.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (addr, v) ->
          Machine.Memory.write mem addr v;
          Hashtbl.replace model addr v)
        ops;
      Hashtbl.fold
        (fun addr v acc -> acc && Int64.equal (Machine.Memory.read mem addr) v)
        model true)

let printable_string =
  QCheck.string_gen_of_size (QCheck.Gen.int_range 0 60)
    (QCheck.Gen.char_range '\032' '\126')

let prop_string_roundtrip =
  QCheck.Test.make ~count:200 ~name:"string store/load roundtrip" printable_string
    (fun s ->
      QCheck.assume (not (String.contains s '\000'));
      let mem = Machine.Memory.create () in
      let _ = Machine.Memory.write_string mem 0x8000L s in
      String.equal (Machine.Memory.read_string mem 0x8000L) s)

(* --- binop evaluator ---------------------------------------------------- *)

let prop_binop_comparisons =
  QCheck.Test.make ~count:300 ~name:"comparison operators are consistent"
    QCheck.(pair gen_word gen_word)
    (fun (a, b) ->
      let v op = Sil.Instr.eval_binop op a b in
      let as_bool x = not (Int64.equal x 0L) in
      as_bool (v Sil.Instr.Eq) = not (as_bool (v Sil.Instr.Ne))
      && as_bool (v Sil.Instr.Lt) = not (as_bool (v Sil.Instr.Ge))
      && as_bool (v Sil.Instr.Gt) = not (as_bool (v Sil.Instr.Le))
      && (as_bool (v Sil.Instr.Lt) || as_bool (v Sil.Instr.Gt)
         || as_bool (v Sil.Instr.Eq)))

let prop_binop_algebra =
  QCheck.Test.make ~count:300 ~name:"add/sub and xor involution"
    QCheck.(pair gen_word gen_word)
    (fun (a, b) ->
      let open Sil.Instr in
      Int64.equal (eval_binop Sub (eval_binop Add a b) b) a
      && Int64.equal (eval_binop Xor (eval_binop Xor a b) b) a
      && Int64.equal (eval_binop Div a 0L) 0L)

(* --- loops execute the right number of times ---------------------------- *)

let prop_counted_loop =
  QCheck.Test.make ~count:30 ~name:"counted_loop performs exactly n syscalls"
    QCheck.(int_range 0 50)
    (fun n ->
      let pb = Sil.Builder.program () in
      Kernel.Syscalls.declare_stubs pb;
      let fb = Sil.Builder.func pb "main" ~params:[] in
      Workloads.Appkit.counted_loop fb ~tag:"t" ~count:n (fun fb ->
          Sil.Builder.call fb "getpid" []);
      Sil.Builder.halt fb;
      Sil.Builder.seal fb;
      let prog = Sil.Builder.build pb ~entry:"main" in
      let machine = Machine.create prog in
      let proc = Kernel.boot machine in
      match Machine.run machine with
      | Machine.Exited _ ->
        Kernel.Process.syscall_count proc (Kernel.Syscalls.number "getpid") = n
      | Machine.Faulted _ -> false)

(* --- layout -------------------------------------------------------------- *)

let prop_layout_injective =
  QCheck.Test.make ~count:10 ~name:"code addresses are injective over locations"
    QCheck.unit
    (fun () ->
      let prog = Testlib.exec_program () in
      let layout = Machine.Layout.build prog in
      let addrs =
        List.map
          (fun (loc, _) -> Machine.Layout.addr_of_loc layout loc)
          (Sil.Prog.instrs prog)
      in
      List.length addrs = List.length (List.sort_uniq compare addrs))

(* --- seccomp allowlist ---------------------------------------------------- *)

let prop_allowlist =
  QCheck.Test.make ~count:100 ~name:"allowlist allows exactly its members"
    QCheck.(pair (list (int_range 0 400)) (int_range 0 400))
    (fun (allowed, probe) ->
      let f = Kernel.Seccomp.allowlist allowed in
      let verdict = Kernel.Seccomp.evaluate f probe in
      if List.mem probe allowed then verdict = Kernel.Seccomp.Allow
      else verdict = Kernel.Seccomp.Kill)

(* --- types ------------------------------------------------------------------ *)

let gen_ty =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then oneofl [ Sil.Types.I64; Sil.Types.Ptr Sil.Types.I64 ]
        else
          frequency
            [
              (2, oneofl [ Sil.Types.I64; Sil.Types.Ptr Sil.Types.I64 ]);
              (1, map2 (fun t k -> Sil.Types.Array (t, k)) (self (n / 2)) (int_range 1 5));
            ]))

let prop_array_sizes =
  QCheck.Test.make ~count:100 ~name:"array size = n * element size"
    (QCheck.make gen_ty)
    (fun ty ->
      let env = Sil.Types.struct_env_create () in
      let n = 7 in
      Sil.Types.size_words env (Sil.Types.Array (ty, n))
      = n * Sil.Types.size_words env ty)

let suites =
  [
    ( "properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_shadow_model;
          prop_shadow_growth;
          prop_shadow_insert_roundtrip;
          prop_binding_key_injective;
          prop_binding_keys_disjoint;
          prop_memory_roundtrip;
          prop_string_roundtrip;
          prop_binop_comparisons;
          prop_binop_algebra;
          prop_counted_loop;
          prop_layout_injective;
          prop_allowlist;
          prop_array_sizes;
        ] );
  ]
