(* Trace-driven replay: the golden-trace corpus, record→replay
   equivalence properties, reader fuzzing, and divergence detection on
   tampered traces. *)

module Trace = Bastion_replay.Trace
module Engine = Bastion_replay.Engine
module Drivers = Workloads.Drivers

let read_whole path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_temp_trace f =
  let path = Filename.temp_file "bastion-replay" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* --- golden corpus ---------------------------------------------------- *)

let golden_files =
  [
    "golden/nginx-benign.jsonl"; "golden/sqlite-benign.jsonl";
    "golden/vsftpd-benign.jsonl"; "golden/nginx-attack.jsonl";
    "golden/sqlite-attack.jsonl"; "golden/vsftpd-attack.jsonl";
  ]

(* Every checked-in golden trace must replay strictly with zero
   divergences: identical verdicts, identical per-trap and total cycle
   attribution.  This is the offline re-verification gate CI runs. *)
let test_golden_corpus () =
  List.iter
    (fun file ->
      let tr = Trace.read_file file in
      Alcotest.(check int)
        (file ^ " trap records match header") tr.t_header.h_traps
        (List.length tr.t_events);
      let r = Engine.replay ~strict:true tr in
      List.iter
        (fun (d : Engine.divergence) ->
          Printf.printf "%s:%d: %s: recorded %s, replayed %s\n" file d.dv_line
            d.dv_field d.dv_recorded d.dv_replayed)
        r.rp_divergences;
      Alcotest.(check bool) (file ^ " replays without divergence") true (Engine.ok r);
      Alcotest.(check int)
        (file ^ " replays every trap") r.rp_traps_recorded r.rp_traps_replayed;
      Alcotest.(check int)
        (file ^ " cycle total matches header") tr.t_header.h_cycles
        r.rp_cycles_replayed)
    golden_files

(* --- record→replay equivalence --------------------------------------- *)

let apps = [| "nginx"; "sqlite"; "vsftpd" |]

let replay_defenses =
  [|
    Drivers.Bastion_ct; Drivers.Bastion_ct_cf; Drivers.Bastion_full;
    Drivers.Bastion_fs Bastion.Monitor.Fs_full;
  |]

(* For any workload/defense/cache/pre-resolve/prefilter/shard
   configuration, recording a run and replaying the trace yields
   identical verdicts, trap counts and monitored cycle totals —
   strictly, down to per-phase spans and ptrace traffic.  A tiered
   trace holds only the traps that fell through the seccomp-stage
   automaton; replay redeploys the recorded mode so the same subset
   reaches the monitor.  Recording is serial; when the drawn
   configuration is sharded, the sharded per-tracee run must itself
   match the replayed trace (sharding never moves a verdict or a
   cycle, so one serial trace vouches for every shard count). *)
let prefilter_modes =
  [| None; Some Kernel.Seccomp.Flow_tiered; Some Kernel.Seccomp.Flow_standalone |]

let prop_record_replay_equivalence =
  QCheck.Test.make ~count:10 ~name:"record then replay is divergence-free"
    QCheck.(
      pair
        (pair (int_range 0 2) (int_range 0 3))
        (pair (pair bool bool) (pair (int_range 1 3) (int_range 0 2))))
    (fun ((ai, di), ((trap_cache, pre_resolve), (shards, pfi))) ->
      with_temp_trace (fun path ->
          let app = apps.(ai) and defense = replay_defenses.(di) in
          let prefilter = prefilter_modes.(pfi) in
          let m =
            Engine.record_run ~trap_cache ~pre_resolve ?prefilter ~app
              ~scale:"small" ~defense ~path ()
          in
          let tr = Trace.read_file path in
          let r = Engine.replay ~strict:true tr in
          let sharded_matches =
            shards = 1
            ||
            let a = Result.get_ok (Engine.app_of ~name:app ~scale:"small") in
            let mm =
              Drivers.run_multi ~trap_cache ~pre_resolve ?prefilter ~shards
                ~tracees:shards a defense
            in
            Array.for_all
              (fun (t : Drivers.measurement) ->
                t.m_cycles = tr.t_header.h_cycles
                && t.m_traps = m.Drivers.m_traps)
              mm.mm_tracees
          in
          Engine.ok r
          && r.rp_traps_replayed = r.rp_traps_recorded
          && r.rp_traps_recorded = tr.t_header.h_traps
          && r.rp_cycles_replayed = tr.t_header.h_cycles
          && tr.t_header.h_cycles = m.Drivers.m_cycles
          && sharded_matches))

let test_record_replay_attack () =
  with_temp_trace (fun path ->
      let outcome =
        Engine.record_attack ~attack_id:"rop-exec-daemon"
          ~config:Attacks.Runner.Full_bastion ~path ()
      in
      (match outcome with
      | Attacks.Runner.Blocked _ -> ()
      | o ->
        Alcotest.failf "rop-exec-daemon under full should be blocked, got %s"
          (Attacks.Runner.outcome_name o));
      let r = Engine.replay ~strict:true (Trace.read_file path) in
      Alcotest.(check bool) "attack trace replays clean" true (Engine.ok r))

(* A configuration without a monitor records zero traps and a "-"
   fingerprint, and still round-trips. *)
let test_record_replay_vanilla () =
  with_temp_trace (fun path ->
      ignore
        (Engine.record_run ~app:"nginx" ~scale:"small" ~defense:Drivers.Vanilla
           ~path ());
      let tr = Trace.read_file path in
      Alcotest.(check int) "no traps recorded" 0 tr.t_header.h_traps;
      Alcotest.(check string) "no fingerprint" "-" tr.t_header.h_fingerprint;
      let r = Engine.replay ~strict:true tr in
      Alcotest.(check bool) "vanilla trace replays clean" true (Engine.ok r))

(* --- reader hard gate -------------------------------------------------- *)

let check_malformed name text =
  match Trace.read_string text with
  | _ -> Alcotest.failf "%s: reader accepted a malformed trace" name
  | exception Trace.Malformed { line; msg; _ } ->
    Alcotest.(check bool)
      (name ^ " reports a positive line number") true (line >= 1);
    Alcotest.(check bool) (name ^ " has a message") true (String.length msg > 0)

let small_trace () = read_whole "golden/vsftpd-attack.jsonl"

let test_reader_rejections () =
  let text = small_trace () in
  let lines = String.split_on_char '\n' (String.trim text) in
  check_malformed "empty trace" "";
  check_malformed "non-JSON header" "hello world\n";
  check_malformed "wrong format name"
    "{\"format\":\"chrome-trace\",\"version\":1}\n";
  check_malformed "unknown version"
    "{\"format\":\"bastion-trace\",\"version\":99}\n";
  check_malformed "outdated version (v1 lacks the prefilter knob)"
    "{\"format\":\"bastion-trace\",\"version\":1,\"kind\":\"fuzz\"}\n";
  check_malformed "unknown kind"
    "{\"format\":\"bastion-trace\",\"version\":2,\"kind\":\"fuzz\"}\n";
  check_malformed "unknown prefilter mode"
    "{\"format\":\"bastion-trace\",\"version\":2,\"kind\":\"run\",\
     \"app\":\"nginx\",\"defense\":\"full\",\"scale\":\"small\",\
     \"trap_cache\":true,\"pre_resolve\":false,\"prefilter\":\"sideways\",\
     \"fingerprint\":\"-\",\"traps\":0,\"cycles\":0}\n";
  (* Drop the last line: the header's trap count no longer matches. *)
  check_malformed "truncated stream"
    (String.concat "\n" (List.filteri (fun i _ -> i < List.length lines - 1) lines));
  (* Cut the file mid-record: unterminated JSON on the final line. *)
  check_malformed "cut mid-record" (String.sub text 0 (String.length text - 30));
  (* Duplicate the final trap record: seq contiguity breaks. *)
  check_malformed "duplicated line"
    (String.concat "\n" (lines @ [ List.nth lines (List.length lines - 1) ]));
  (* Swap the first two trap records (instants may sit between them;
     only trap lines carry the seq chain). *)
  let is_trap l = Astring.String.is_infix ~affix:"\"seq\":" l in
  let trap_idx =
    List.filteri (fun i _ -> is_trap (List.nth lines i))
      (List.mapi (fun i _ -> i) lines)
  in
  (match trap_idx with
  | i :: j :: _ ->
    let swapped =
      List.mapi
        (fun k l ->
          if k = i then List.nth lines j
          else if k = j then List.nth lines i
          else l)
        lines
    in
    check_malformed "reordered lines" (String.concat "\n" swapped)
  | _ -> Alcotest.fail "trace has fewer than two trap records");
  (* Trailing garbage after a well-formed record. *)
  check_malformed "trailing garbage"
    (String.concat "\n" (List.mapi (fun i l -> if i = 1 then l ^ " }" else l) lines));
  (* A malformed \u escape inside a record string. *)
  check_malformed "bad unicode escape"
    (String.concat "\n"
       (List.mapi
          (fun i l ->
            if i = 1 then
              Str.global_replace (Str.regexp_string "\"kind\"") "\"ki\\u00Gd\"" l
            else l)
          lines));
  check_malformed "blank interior line"
    (String.concat "\n" (List.mapi (fun i l -> if i = 1 then "" else l) lines))

(* Single-bit flips anywhere in the file must produce either a clean
   parse or a positioned [Malformed] — never any other exception. *)
let prop_bitflip_total =
  let text = lazy (small_trace ()) in
  QCheck.Test.make ~count:300 ~name:"reader is total under single-bit flips"
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 7))
    (fun (pos, bit) ->
      let text = Lazy.force text in
      let pos = pos mod String.length text in
      let b = Bytes.of_string text in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      match Trace.read_string (Bytes.to_string b) with
      | _ -> true
      | exception Trace.Malformed { line; _ } -> line >= 1
      | exception _ -> false)

(* --- divergence detection on tampered traces -------------------------- *)

let replace_once ~sub ~by text =
  match Str.bounded_split_delim (Str.regexp_string sub) text 2 with
  | [ pre; post ] -> pre ^ by ^ post
  | _ -> Alcotest.failf "substring %S not found in trace" sub

(* Corrupt one recorded verdict: replay must flag exactly that record,
   by line number, with a verdict divergence — and since the replay
   follows the recorded (corrupted) deny, the run dies early, which
   surfaces as further run-level divergences.  Exit is non-zero either
   way. *)
let test_corrupted_verdict () =
  let text = read_whole "golden/nginx-benign.jsonl" in
  let tampered =
    replace_once ~sub:"\"verdict\":\"allowed\""
      ~by:"\"verdict\":\"denied\",\"context\":\"CT\",\"detail\":\"tampered\"" text
  in
  (* The corrupted record's 1-based line number. *)
  let corrupt_line =
    let lines = String.split_on_char '\n' tampered in
    1 + Option.get (List.find_index (fun l ->
        Astring.String.is_infix ~affix:"tampered" l) lines)
  in
  let tr = Trace.read_string ~file:"tampered.jsonl" tampered in
  let r = Engine.replay ~strict:true tr in
  Alcotest.(check bool) "tampered trace diverges" false (Engine.ok r);
  match r.rp_divergences with
  | first :: _ ->
    Alcotest.(check string) "field is the verdict" "verdict" first.dv_field;
    Alcotest.(check int) "line points at the corrupted record" corrupt_line
      first.dv_line;
    Alcotest.(check bool) "recorded side shows the tampered deny" true
      (Astring.String.is_infix ~affix:"tampered" first.dv_recorded)
  | [] -> Alcotest.fail "no divergences reported"

(* Tampering with the header fingerprint must refuse judgement: the
   hard gate is a run-level condition with its own report field, never
   a synthetic divergence row (which used to leak dv_line=1/dv_seq=-1
   into --json as a fake stream divergence). *)
let test_fingerprint_gate () =
  let text = read_whole "golden/nginx-benign.jsonl" in
  let tampered =
    replace_once ~sub:"\"fingerprint\":\"fnv1a64:"
      ~by:"\"fingerprint\":\"fnv1a64:0000" text
  in
  let tr = Trace.read_string ~file:"tampered.jsonl" tampered in
  let r = Engine.replay tr in
  Alcotest.(check bool) "gated report is not ok" false (Engine.ok r);
  (match r.rp_header_mismatch with
  | Some (recorded, deployed) ->
    Alcotest.(check bool) "recorded side is the tampered fingerprint" true
      (Astring.String.is_prefix ~affix:"fnv1a64:0000" recorded);
    Alcotest.(check bool) "deployed side differs" true
      (not (String.equal recorded deployed))
  | None -> Alcotest.fail "expected rp_header_mismatch = Some _");
  Alcotest.(check int) "no divergence rows" 0 (List.length r.rp_divergences);
  Alcotest.(check int) "no traps judged" 0 r.rp_traps_replayed;
  (* JSON shape: a structured header_mismatch member, an empty
     divergence array, no fake per-trap row. *)
  let j = Engine.report_to_json r in
  (match Report.Json.member "header_mismatch" j with
  | Some (Report.Json.Obj fields) ->
    Alcotest.(check bool) "recorded and deployed members" true
      (List.mem_assoc "recorded" fields && List.mem_assoc "deployed" fields)
  | _ -> Alcotest.fail "JSON lacks the header_mismatch object");
  (match Report.Json.member "divergences" j with
  | Some (Report.Json.List l) ->
    Alcotest.(check int) "empty divergence array" 0 (List.length l)
  | _ -> Alcotest.fail "JSON lacks the divergences array");
  (* An untampered gate-free report must not grow the member. *)
  let clean = Engine.replay (Trace.read_string ~file:"c.jsonl" text) in
  Alcotest.(check bool) "clean report has no header_mismatch member" true
    (Report.Json.member "header_mismatch" (Engine.report_to_json clean) = None)

(* Tampering with the header cycle total is a run-level divergence. *)
let test_cycle_total_divergence () =
  let text = read_whole "golden/vsftpd-attack.jsonl" in
  let tr = Trace.read_string ~file:"tampered.jsonl" text in
  let bumped =
    { tr with t_header = { tr.t_header with h_cycles = tr.t_header.h_cycles + 1 } }
  in
  let r = Engine.replay bumped in
  Alcotest.(check bool) "bumped cycle total diverges" false (Engine.ok r);
  match r.rp_divergences with
  | [ d ] -> Alcotest.(check string) "field" "total-cycles" d.dv_field
  | ds -> Alcotest.failf "expected 1 divergence, got %d" (List.length ds)

(* --- differential replay ---------------------------------------------- *)

let flip_count (r : Engine.diff_report) =
  List.length r.dr_allow_to_deny + List.length r.dr_deny_to_allow

(* Rewrite one v3 section body through [f], fixing the length prefix. *)
let edit_section name f text =
  let rec go acc = function
    | [] -> List.rev acc
    | l :: rest ->
      if String.starts_with ~prefix:("section " ^ name ^ " ") l then begin
        let count, flag = Scanf.sscanf l "section %s %d %s%!" (fun _ c fl -> (c, fl)) in
        let body = List.filteri (fun i _ -> i < count) rest in
        let rest = List.filteri (fun i _ -> i >= count) rest in
        let body = f body in
        let hdr = Printf.sprintf "section %s %d %s" name (List.length body) flag in
        go (List.rev_append (hdr :: body) acc) rest
      end
      else go (l :: acc) rest
  in
  String.concat "\n" (go [] (String.split_on_char '\n' text))

let against_of_text (base : Bastion.Api.protected) text =
  Bastion.Metadata_io.restore base.inst.iprog (Bastion.Metadata_io.parse text)

(* Unchanged metadata: the differential replay is the regression
   oracle — every trap matches, nothing flips, nothing moves, and the
   cycle attribution is byte-identical. *)
let test_diff_same_metadata () =
  with_temp_trace (fun path ->
      ignore
        (Engine.record_run ~pre_resolve:true ~app:"nginx" ~scale:"small"
           ~defense:Drivers.Bastion_full ~path ());
      let tr = Trace.read_file path in
      let r = Engine.diff_replay tr in
      Alcotest.(check bool) "same metadata" true r.dr_same_metadata;
      Alcotest.(check bool) "diff ok" true (Engine.diff_ok r);
      Alcotest.(check int) "all traps matched" r.dr_traps_recorded
        r.dr_traps_matched;
      Alcotest.(check int) "no flips" 0 (flip_count r);
      Alcotest.(check int) "no context moves" 0 (List.length r.dr_context_moves);
      Alcotest.(check int) "no tier movement" 0 r.dr_tier_moves;
      Alcotest.(check int) "no fresh unmatched traps" 0 r.dr_fresh_unmatched;
      Alcotest.(check int) "no unconsumed recorded traps" 0
        r.dr_unconsumed_recorded;
      Alcotest.(check int) "per-trap cycles identical" 0 r.dr_trap_cycle_delta;
      Alcotest.(check int) "total cycles identical" r.dr_cycles_recorded
        r.dr_cycles_replayed;
      let diag =
        List.fold_left
          (fun a (b, af, c) -> if String.equal b af then a + c else a)
          0 r.dr_tier_matrix
      in
      Alcotest.(check int) "matrix diagonal covers every matched trap"
        r.dr_traps_matched diag)

(* Mutation (a): drop the static pre-resolution records.  No verdict
   may flip — static AI verification is an optimisation, not a policy —
   but the matched traps must visibly move off the pre-resolved tier
   and the fresh judging must get dearer. *)
let test_diff_dropped_pre_resolution () =
  with_temp_trace (fun path ->
      ignore
        (Engine.record_run ~pre_resolve:true ~app:"nginx" ~scale:"small"
           ~defense:Drivers.Bastion_full ~path ());
      let tr = Trace.read_file path in
      let base = Engine.base_bundle tr in
      let text =
        edit_section "static"
          (List.filter (fun l ->
               not (String.starts_with ~prefix:"pre-resolved" l)))
          (Bastion.Metadata_io.write base)
      in
      let r = Engine.diff_replay ~against:(against_of_text base text) tr in
      Alcotest.(check bool) "metadata changed" false r.dr_same_metadata;
      Alcotest.(check int) "no verdict flips" 0 (flip_count r);
      Alcotest.(check int) "no context moves" 0 (List.length r.dr_context_moves);
      Alcotest.(check bool) "still a benign diff" true (Engine.diff_ok r);
      Alcotest.(check bool) "traps moved off the pre-resolved tier" true
        (List.exists
           (fun (b, a, _) ->
             String.equal b "pre-resolved" && not (String.equal a "pre-resolved"))
           r.dr_tier_matrix);
      Alcotest.(check bool) "movement counted" true (r.dr_tier_moves > 0);
      Alcotest.(check bool) "fresh judging got dearer" true
        (r.dr_trap_cycle_delta > 0))

(* Mutation (b): mark every untainted slot rank tainted.  The cheap
   taint-ranked AI path is disabled, so traps fall to costlier tiers —
   again with zero verdict flips. *)
let test_diff_taint_rank_flip () =
  with_temp_trace (fun path ->
      ignore
        (Engine.record_run ~pre_resolve:true ~app:"vsftpd" ~scale:"small"
           ~defense:Drivers.Bastion_full ~path ());
      let tr = Trace.read_file path in
      let base = Engine.base_bundle tr in
      let text =
        edit_section "static"
          (List.map (fun l ->
               if
                 String.starts_with ~prefix:"slot-rank " l
                 && String.ends_with ~suffix:" u" l
               then String.sub l 0 (String.length l - 1) ^ "t"
               else l))
          (Bastion.Metadata_io.write base)
      in
      let r = Engine.diff_replay ~against:(against_of_text base text) tr in
      Alcotest.(check bool) "metadata changed" false r.dr_same_metadata;
      Alcotest.(check int) "no verdict flips" 0 (flip_count r);
      Alcotest.(check bool) "still a benign diff" true (Engine.diff_ok r);
      Alcotest.(check bool) "cheap-path traps fell to the full walk" true
        (List.exists
           (fun (b, a, _) -> String.equal b "cheap" && String.equal a "full")
           r.dr_tier_matrix);
      Alcotest.(check bool) "fresh judging got dearer" true
        (r.dr_trap_cycle_delta > 0))

(* Mutation (c): remove the CF valid-caller edges.  Every sensitive
   trap the recorded run allowed is now denied by the fresh
   control-flow check — each one an allow->deny flip anchored to its
   recorded line, and the diff is no longer benign. *)
let test_diff_removed_cf_edges () =
  with_temp_trace (fun path ->
      ignore
        (Engine.record_run ~app:"sqlite" ~scale:"small"
           ~defense:Drivers.Bastion_full ~path ());
      let tr = Trace.read_file path in
      let base = Engine.base_bundle tr in
      let text =
        edit_section "cfg"
          (List.filter (fun l ->
               not (String.starts_with ~prefix:"valid-caller " l)))
          (Bastion.Metadata_io.write base)
      in
      let r = Engine.diff_replay ~against:(against_of_text base text) tr in
      Alcotest.(check bool) "metadata changed" false r.dr_same_metadata;
      Alcotest.(check bool) "flips detected" true
        (List.length r.dr_allow_to_deny > 0);
      Alcotest.(check int) "no deny-to-allow flips" 0
        (List.length r.dr_deny_to_allow);
      Alcotest.(check bool) "diff is not benign" false (Engine.diff_ok r);
      List.iter
        (fun (f : Engine.flip) ->
          Alcotest.(check string) "recorded side allowed" "allowed" f.fl_before;
          Alcotest.(check bool) "fresh side is a control-flow denial" true
            (Astring.String.is_infix ~affix:"control-flow" f.fl_after);
          Alcotest.(check bool) "anchored to a recorded trap" true
            (f.fl_line > 1 && f.fl_seq >= 0))
        r.dr_allow_to_deny)

(* The inverse direction: replaying an unenriched recording against an
   enriched bundle moves AI work from the full walk down to the static
   tiers, with zero flips and a negative cycle delta. *)
let test_diff_enrichment_moves_tiers () =
  with_temp_trace (fun path ->
      ignore
        (Engine.record_run ~app:"nginx" ~scale:"small"
           ~defense:Drivers.Bastion_full ~path ());
      let tr = Trace.read_file path in
      let against = Bastion_analysis.Preresolve.enrich (Engine.base_bundle tr) in
      let r = Engine.diff_replay ~against tr in
      Alcotest.(check bool) "metadata changed" false r.dr_same_metadata;
      Alcotest.(check int) "no flips" 0 (flip_count r);
      Alcotest.(check bool) "benign diff" true (Engine.diff_ok r);
      Alcotest.(check bool) "AI work moved to cheaper static tiers" true
        (List.exists
           (fun (b, a, _) ->
             String.equal b "full" && not (String.equal a "full"))
           r.dr_tier_matrix);
      Alcotest.(check bool) "fresh judging got cheaper" true
        (r.dr_trap_cycle_delta < 0))

(* The regression oracle CI runs: every checked-in golden trace
   diff-replays clean against the current in-tree compile pass. *)
let test_golden_diff_oracle () =
  List.iter
    (fun file ->
      let tr = Trace.read_file file in
      let r = Engine.diff_replay tr in
      Alcotest.(check bool) (file ^ " metadata unchanged") true
        r.dr_same_metadata;
      Alcotest.(check bool) (file ^ " diff clean") true (Engine.diff_ok r);
      Alcotest.(check int) (file ^ " zero tier movement") 0 r.dr_tier_moves;
      Alcotest.(check int) (file ^ " zero cycle delta") 0 r.dr_trap_cycle_delta;
      Alcotest.(check int) (file ^ " every trap matched") tr.t_header.h_traps
        r.dr_traps_matched;
      Alcotest.(check int) (file ^ " nothing unconsumed") 0
        r.dr_unconsumed_recorded;
      Alcotest.(check int) (file ^ " nothing unmatched") 0 r.dr_fresh_unmatched)
    golden_files

let suites =
  [
    ( "replay",
      [
        Alcotest.test_case "golden corpus replays divergence-free" `Quick
          test_golden_corpus;
        Alcotest.test_case "attack record then replay" `Quick
          test_record_replay_attack;
        Alcotest.test_case "vanilla run records and replays" `Quick
          test_record_replay_vanilla;
        Alcotest.test_case "reader rejects malformed traces" `Quick
          test_reader_rejections;
        Alcotest.test_case "corrupted verdict is flagged with its line" `Quick
          test_corrupted_verdict;
        Alcotest.test_case "fingerprint mismatch refuses judgement" `Quick
          test_fingerprint_gate;
        Alcotest.test_case "cycle-total tamper is a run divergence" `Quick
          test_cycle_total_divergence;
        Alcotest.test_case "diff-replay: same metadata is a clean oracle" `Quick
          test_diff_same_metadata;
        Alcotest.test_case "diff-replay: dropped pre-resolution moves tiers"
          `Quick test_diff_dropped_pre_resolution;
        Alcotest.test_case "diff-replay: tainted ranks disable the cheap path"
          `Quick test_diff_taint_rank_flip;
        Alcotest.test_case "diff-replay: removed CF edges flip verdicts" `Quick
          test_diff_removed_cf_edges;
        Alcotest.test_case "diff-replay: enrichment moves tiers down" `Quick
          test_diff_enrichment_moves_tiers;
        Alcotest.test_case "diff-replay: golden corpus is the oracle" `Quick
          test_golden_diff_oracle;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_record_replay_equivalence; prop_bitflip_total ] );
  ]
