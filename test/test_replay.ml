(* Trace-driven replay: the golden-trace corpus, record→replay
   equivalence properties, reader fuzzing, and divergence detection on
   tampered traces. *)

module Trace = Bastion_replay.Trace
module Engine = Bastion_replay.Engine
module Drivers = Workloads.Drivers

let read_whole path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_temp_trace f =
  let path = Filename.temp_file "bastion-replay" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* --- golden corpus ---------------------------------------------------- *)

let golden_files =
  [
    "golden/nginx-benign.jsonl"; "golden/sqlite-benign.jsonl";
    "golden/vsftpd-benign.jsonl"; "golden/nginx-attack.jsonl";
    "golden/sqlite-attack.jsonl"; "golden/vsftpd-attack.jsonl";
  ]

(* Every checked-in golden trace must replay strictly with zero
   divergences: identical verdicts, identical per-trap and total cycle
   attribution.  This is the offline re-verification gate CI runs. *)
let test_golden_corpus () =
  List.iter
    (fun file ->
      let tr = Trace.read_file file in
      Alcotest.(check int)
        (file ^ " trap records match header") tr.t_header.h_traps
        (List.length tr.t_events);
      let r = Engine.replay ~strict:true tr in
      List.iter
        (fun (d : Engine.divergence) ->
          Printf.printf "%s:%d: %s: recorded %s, replayed %s\n" file d.dv_line
            d.dv_field d.dv_recorded d.dv_replayed)
        r.rp_divergences;
      Alcotest.(check bool) (file ^ " replays without divergence") true (Engine.ok r);
      Alcotest.(check int)
        (file ^ " replays every trap") r.rp_traps_recorded r.rp_traps_replayed;
      Alcotest.(check int)
        (file ^ " cycle total matches header") tr.t_header.h_cycles
        r.rp_cycles_replayed)
    golden_files

(* --- record→replay equivalence --------------------------------------- *)

let apps = [| "nginx"; "sqlite"; "vsftpd" |]

let replay_defenses =
  [|
    Drivers.Bastion_ct; Drivers.Bastion_ct_cf; Drivers.Bastion_full;
    Drivers.Bastion_fs Bastion.Monitor.Fs_full;
  |]

(* For any workload/defense/cache/pre-resolve/prefilter/shard
   configuration, recording a run and replaying the trace yields
   identical verdicts, trap counts and monitored cycle totals —
   strictly, down to per-phase spans and ptrace traffic.  A tiered
   trace holds only the traps that fell through the seccomp-stage
   automaton; replay redeploys the recorded mode so the same subset
   reaches the monitor.  Recording is serial; when the drawn
   configuration is sharded, the sharded per-tracee run must itself
   match the replayed trace (sharding never moves a verdict or a
   cycle, so one serial trace vouches for every shard count). *)
let prefilter_modes =
  [| None; Some Kernel.Seccomp.Flow_tiered; Some Kernel.Seccomp.Flow_standalone |]

let prop_record_replay_equivalence =
  QCheck.Test.make ~count:10 ~name:"record then replay is divergence-free"
    QCheck.(
      pair
        (pair (int_range 0 2) (int_range 0 3))
        (pair (pair bool bool) (pair (int_range 1 3) (int_range 0 2))))
    (fun ((ai, di), ((trap_cache, pre_resolve), (shards, pfi))) ->
      with_temp_trace (fun path ->
          let app = apps.(ai) and defense = replay_defenses.(di) in
          let prefilter = prefilter_modes.(pfi) in
          let m =
            Engine.record_run ~trap_cache ~pre_resolve ?prefilter ~app
              ~scale:"small" ~defense ~path ()
          in
          let tr = Trace.read_file path in
          let r = Engine.replay ~strict:true tr in
          let sharded_matches =
            shards = 1
            ||
            let a = Result.get_ok (Engine.app_of ~name:app ~scale:"small") in
            let mm =
              Drivers.run_multi ~trap_cache ~pre_resolve ?prefilter ~shards
                ~tracees:shards a defense
            in
            Array.for_all
              (fun (t : Drivers.measurement) ->
                t.m_cycles = tr.t_header.h_cycles
                && t.m_traps = m.Drivers.m_traps)
              mm.mm_tracees
          in
          Engine.ok r
          && r.rp_traps_replayed = r.rp_traps_recorded
          && r.rp_traps_recorded = tr.t_header.h_traps
          && r.rp_cycles_replayed = tr.t_header.h_cycles
          && tr.t_header.h_cycles = m.Drivers.m_cycles
          && sharded_matches))

let test_record_replay_attack () =
  with_temp_trace (fun path ->
      let outcome =
        Engine.record_attack ~attack_id:"rop-exec-daemon"
          ~config:Attacks.Runner.Full_bastion ~path ()
      in
      (match outcome with
      | Attacks.Runner.Blocked _ -> ()
      | o ->
        Alcotest.failf "rop-exec-daemon under full should be blocked, got %s"
          (Attacks.Runner.outcome_name o));
      let r = Engine.replay ~strict:true (Trace.read_file path) in
      Alcotest.(check bool) "attack trace replays clean" true (Engine.ok r))

(* A configuration without a monitor records zero traps and a "-"
   fingerprint, and still round-trips. *)
let test_record_replay_vanilla () =
  with_temp_trace (fun path ->
      ignore
        (Engine.record_run ~app:"nginx" ~scale:"small" ~defense:Drivers.Vanilla
           ~path ());
      let tr = Trace.read_file path in
      Alcotest.(check int) "no traps recorded" 0 tr.t_header.h_traps;
      Alcotest.(check string) "no fingerprint" "-" tr.t_header.h_fingerprint;
      let r = Engine.replay ~strict:true tr in
      Alcotest.(check bool) "vanilla trace replays clean" true (Engine.ok r))

(* --- reader hard gate -------------------------------------------------- *)

let check_malformed name text =
  match Trace.read_string text with
  | _ -> Alcotest.failf "%s: reader accepted a malformed trace" name
  | exception Trace.Malformed { line; msg; _ } ->
    Alcotest.(check bool)
      (name ^ " reports a positive line number") true (line >= 1);
    Alcotest.(check bool) (name ^ " has a message") true (String.length msg > 0)

let small_trace () = read_whole "golden/vsftpd-attack.jsonl"

let test_reader_rejections () =
  let text = small_trace () in
  let lines = String.split_on_char '\n' (String.trim text) in
  check_malformed "empty trace" "";
  check_malformed "non-JSON header" "hello world\n";
  check_malformed "wrong format name"
    "{\"format\":\"chrome-trace\",\"version\":1}\n";
  check_malformed "unknown version"
    "{\"format\":\"bastion-trace\",\"version\":99}\n";
  check_malformed "outdated version (v1 lacks the prefilter knob)"
    "{\"format\":\"bastion-trace\",\"version\":1,\"kind\":\"fuzz\"}\n";
  check_malformed "unknown kind"
    "{\"format\":\"bastion-trace\",\"version\":2,\"kind\":\"fuzz\"}\n";
  check_malformed "unknown prefilter mode"
    "{\"format\":\"bastion-trace\",\"version\":2,\"kind\":\"run\",\
     \"app\":\"nginx\",\"defense\":\"full\",\"scale\":\"small\",\
     \"trap_cache\":true,\"pre_resolve\":false,\"prefilter\":\"sideways\",\
     \"fingerprint\":\"-\",\"traps\":0,\"cycles\":0}\n";
  (* Drop the last line: the header's trap count no longer matches. *)
  check_malformed "truncated stream"
    (String.concat "\n" (List.filteri (fun i _ -> i < List.length lines - 1) lines));
  (* Cut the file mid-record: unterminated JSON on the final line. *)
  check_malformed "cut mid-record" (String.sub text 0 (String.length text - 30));
  (* Duplicate the final trap record: seq contiguity breaks. *)
  check_malformed "duplicated line"
    (String.concat "\n" (lines @ [ List.nth lines (List.length lines - 1) ]));
  (* Swap the first two trap records (instants may sit between them;
     only trap lines carry the seq chain). *)
  let is_trap l = Astring.String.is_infix ~affix:"\"seq\":" l in
  let trap_idx =
    List.filteri (fun i _ -> is_trap (List.nth lines i))
      (List.mapi (fun i _ -> i) lines)
  in
  (match trap_idx with
  | i :: j :: _ ->
    let swapped =
      List.mapi
        (fun k l ->
          if k = i then List.nth lines j
          else if k = j then List.nth lines i
          else l)
        lines
    in
    check_malformed "reordered lines" (String.concat "\n" swapped)
  | _ -> Alcotest.fail "trace has fewer than two trap records");
  (* Trailing garbage after a well-formed record. *)
  check_malformed "trailing garbage"
    (String.concat "\n" (List.mapi (fun i l -> if i = 1 then l ^ " }" else l) lines));
  (* A malformed \u escape inside a record string. *)
  check_malformed "bad unicode escape"
    (String.concat "\n"
       (List.mapi
          (fun i l ->
            if i = 1 then
              Str.global_replace (Str.regexp_string "\"kind\"") "\"ki\\u00Gd\"" l
            else l)
          lines));
  check_malformed "blank interior line"
    (String.concat "\n" (List.mapi (fun i l -> if i = 1 then "" else l) lines))

(* Single-bit flips anywhere in the file must produce either a clean
   parse or a positioned [Malformed] — never any other exception. *)
let prop_bitflip_total =
  let text = lazy (small_trace ()) in
  QCheck.Test.make ~count:300 ~name:"reader is total under single-bit flips"
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 7))
    (fun (pos, bit) ->
      let text = Lazy.force text in
      let pos = pos mod String.length text in
      let b = Bytes.of_string text in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      match Trace.read_string (Bytes.to_string b) with
      | _ -> true
      | exception Trace.Malformed { line; _ } -> line >= 1
      | exception _ -> false)

(* --- divergence detection on tampered traces -------------------------- *)

let replace_once ~sub ~by text =
  match Str.bounded_split_delim (Str.regexp_string sub) text 2 with
  | [ pre; post ] -> pre ^ by ^ post
  | _ -> Alcotest.failf "substring %S not found in trace" sub

(* Corrupt one recorded verdict: replay must flag exactly that record,
   by line number, with a verdict divergence — and since the replay
   follows the recorded (corrupted) deny, the run dies early, which
   surfaces as further run-level divergences.  Exit is non-zero either
   way. *)
let test_corrupted_verdict () =
  let text = read_whole "golden/nginx-benign.jsonl" in
  let tampered =
    replace_once ~sub:"\"verdict\":\"allowed\""
      ~by:"\"verdict\":\"denied\",\"context\":\"CT\",\"detail\":\"tampered\"" text
  in
  (* The corrupted record's 1-based line number. *)
  let corrupt_line =
    let lines = String.split_on_char '\n' tampered in
    1 + Option.get (List.find_index (fun l ->
        Astring.String.is_infix ~affix:"tampered" l) lines)
  in
  let tr = Trace.read_string ~file:"tampered.jsonl" tampered in
  let r = Engine.replay ~strict:true tr in
  Alcotest.(check bool) "tampered trace diverges" false (Engine.ok r);
  match r.rp_divergences with
  | first :: _ ->
    Alcotest.(check string) "field is the verdict" "verdict" first.dv_field;
    Alcotest.(check int) "line points at the corrupted record" corrupt_line
      first.dv_line;
    Alcotest.(check bool) "recorded side shows the tampered deny" true
      (Astring.String.is_infix ~affix:"tampered" first.dv_recorded)
  | [] -> Alcotest.fail "no divergences reported"

(* Tampering with the header fingerprint must refuse judgement: one
   fingerprint divergence, no traps replayed. *)
let test_fingerprint_gate () =
  let text = read_whole "golden/nginx-benign.jsonl" in
  let tampered =
    replace_once ~sub:"\"fingerprint\":\"fnv1a64:"
      ~by:"\"fingerprint\":\"fnv1a64:0000" text
  in
  let tr = Trace.read_string ~file:"tampered.jsonl" tampered in
  let r = Engine.replay tr in
  (match r.rp_divergences with
  | [ d ] ->
    Alcotest.(check string) "single fingerprint divergence" "fingerprint" d.dv_field;
    Alcotest.(check int) "reported at the header line" 1 d.dv_line
  | ds -> Alcotest.failf "expected 1 divergence, got %d" (List.length ds));
  Alcotest.(check int) "no traps judged" 0 r.rp_traps_replayed

(* Tampering with the header cycle total is a run-level divergence. *)
let test_cycle_total_divergence () =
  let text = read_whole "golden/vsftpd-attack.jsonl" in
  let tr = Trace.read_string ~file:"tampered.jsonl" text in
  let bumped =
    { tr with t_header = { tr.t_header with h_cycles = tr.t_header.h_cycles + 1 } }
  in
  let r = Engine.replay bumped in
  Alcotest.(check bool) "bumped cycle total diverges" false (Engine.ok r);
  match r.rp_divergences with
  | [ d ] -> Alcotest.(check string) "field" "total-cycles" d.dv_field
  | ds -> Alcotest.failf "expected 1 divergence, got %d" (List.length ds)

let suites =
  [
    ( "replay",
      [
        Alcotest.test_case "golden corpus replays divergence-free" `Quick
          test_golden_corpus;
        Alcotest.test_case "attack record then replay" `Quick
          test_record_replay_attack;
        Alcotest.test_case "vanilla run records and replays" `Quick
          test_record_replay_vanilla;
        Alcotest.test_case "reader rejects malformed traces" `Quick
          test_reader_rejections;
        Alcotest.test_case "corrupted verdict is flagged with its line" `Quick
          test_corrupted_verdict;
        Alcotest.test_case "fingerprint mismatch refuses judgement" `Quick
          test_fingerprint_gate;
        Alcotest.test_case "cycle-total tamper is a run divergence" `Quick
          test_cycle_total_divergence;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_record_replay_equivalence; prop_bitflip_total ] );
  ]
