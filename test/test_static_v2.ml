(* Static pre-resolution v2 (DESIGN §12): the SCCP refinement law over
   random SIL programs, deadness beyond call-graph reachability, the
   taint analysis and its seeded source-mutation flip, and the
   monitor's tiered dispatch at run time (per-context hits and the
   unlisted-caller fallback, dead-site denial, the taint cheap path
   under both config settings). *)

module B = Sil.Builder
open Sil.Operand
module Cp = Bastion_analysis.Constprop
module Sccp = Bastion_analysis.Sccp
module Taint = Bastion_analysis.Taint
module Pre = Bastion_analysis.Preresolve

let i64 = Sil.Types.I64
let ptr = Sil.Types.Ptr Sil.Types.I64

(* --- the refinement law -------------------------------------------- *)

(* A small random program: one frozen and one mutated global, a helper
   whose parameter summary the generator can keep constant or kill, and
   a main whose entry / branch arms / join are filled with
   generator-chosen statements over four locals (constant sets, copies,
   arithmetic, global loads, helper calls, address-taking).  Folding
   branches, address-taken pinning and joined summaries all arise from
   the codes. *)
let random_prog (codes : int list) =
  let pb = B.program () in
  B.global pb "g0" i64 (Sil.Prog.Word 11L);
  B.global pb "g1" i64 (Sil.Prog.Word 3L);
  let fb = B.func pb "helper" ~params:[ ("a", i64) ] in
  let t = B.local fb "t" i64 in
  B.binop fb t Sil.Instr.Add (Var (B.param fb 0)) (const 1);
  B.ret fb (Some (Var t));
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  let vs = Array.init 4 (fun i -> B.local fb (Printf.sprintf "v%d" i) i64) in
  let pa = B.local fb "pa" ptr in
  let emit code =
    let dst = vs.((code / 8) mod 4) in
    let src = vs.((code / 32) mod 4) in
    match code mod 8 with
    | 0 -> B.set fb dst (const ((code / 16) mod 5))
    | 1 -> B.set fb dst (Var src)
    | 2 -> B.binop fb dst Sil.Instr.Add (Var src) (const ((code / 64) mod 3))
    | 3 -> B.set fb dst (Global "g0")
    | 4 -> B.set fb dst (Global "g1")
    | 5 -> B.call fb ~dst "helper" [ const ((code / 16) mod 7) ]
    | 6 -> B.call fb ~dst "helper" [ Var src ]
    | _ -> B.addr_of fb pa (Sil.Place.Lvar dst)
  in
  let seg k = List.filteri (fun i _ -> i mod 4 = k) codes in
  List.iter emit (seg 0);
  let cond =
    match codes with
    | c :: _ when c mod 3 = 0 -> const (c mod 2)
    | c :: _ -> Var vs.(c mod 4)
    | [] -> const 0
  in
  B.branch fb cond "then" "else";
  B.block fb "then";
  List.iter emit (seg 1);
  B.jump fb "join";
  B.block fb "else";
  List.iter emit (seg 2);
  B.jump fb "join";
  B.block fb "join";
  List.iter emit (seg 3);
  B.store fb (Sil.Place.Lglobal "g1") (Var vs.(0));
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let prop_sccp_refines_constprop =
  QCheck.Test.make ~count:150
    ~name:"SCCP refines plain constprop (a Known is never lost, only gained)"
    QCheck.(small_list (int_range 0 1024))
    (fun codes ->
      let prog = random_prog codes in
      let cp = Cp.analyze prog in
      let sccp = Sccp.analyze prog in
      List.for_all
        (fun (((loc : Sil.Loc.t), _) : Sil.Loc.t * Sil.Instr.t) ->
          let f = Sil.Prog.find_func prog loc.func in
          List.for_all
            (fun ((v, _) : Sil.Operand.var * Sil.Types.t) ->
              match Cp.value_of_operand cp loc (Var v) with
              | Cp.Known c ->
                Sccp.value_of_operand sccp loc (Var v) = Sccp.Known c
              | Cp.Top -> true)
            (Sil.Func.all_vars f))
        (Sil.Prog.instrs prog)
      &&
      match (Cp.frozen_global cp "g0", Sccp.frozen_global sccp "g0") with
      | Some a, Some b -> Int64.equal a b
      | None, _ -> true
      | Some _, None -> false)

(* Deadness beyond call-graph reachability: a call behind a branch on a
   frozen-false flag is reachable for the callgraph and dead for SCCP —
   the judgement the dead-site tier rests on. *)
let test_sccp_site_dead_beats_reachability () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.global pb "g_flag" i64 Sil.Prog.Zero;
  let fb = B.func pb "main" ~params:[] in
  let f = B.local fb "f" i64 in
  let r = B.local fb "r" i64 in
  B.load fb f (Sil.Place.Lglobal "g_flag");
  B.branch fb (Var f) "arm" "done";
  B.block fb "arm";
  B.call fb ~dst:r "setuid" [ const 0 ];
  B.jump fb "done";
  B.block fb "done";
  B.halt fb;
  B.seal fb;
  let prog = B.build pb ~entry:"main" in
  let sccp = Sccp.analyze prog in
  let site =
    List.find_map
      (fun ((loc, _, target, _) :
             Sil.Loc.t * _ * Sil.Instr.call_target * Sil.Operand.t list) ->
        match target with
        | Sil.Instr.Direct "setuid" -> Some loc
        | _ -> None)
      (Sil.Prog.calls prog)
  in
  match site with
  | None -> Alcotest.fail "setuid callsite not found"
  | Some loc ->
    let cg = Sil.Callgraph.build prog in
    Alcotest.(check bool) "the callgraph has an edge to the stub" true
      (Sil.Callgraph.direct_callers_of cg "setuid" <> []);
    Alcotest.(check bool) "SCCP proves the site dead" true
      (Sccp.site_dead sccp loc);
    Alcotest.(check bool) "the live branch arm is not dead" false
      (Sccp.site_dead sccp (Sil.Loc.make "main" "entry" 0))

(* --- taint: sources, propagation, the seeded flip ------------------- *)

(* One program, two variants: the setuid argument comes either from a
   kernel-derived value (getpid — untainted) or from the buffer a read
   call filled (tainted).  The only difference is the def of [uid]. *)
let rank_prog ~tainted () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  let fb = B.func pb "main" ~params:[] in
  let buf = B.local fb "buf" i64 in
  let bufp = B.local fb "bufp" ptr in
  let uid = B.local fb "uid" i64 in
  let n = B.local fb "n" i64 in
  let r = B.local fb "r" i64 in
  B.addr_of fb bufp (Sil.Place.Lvar buf);
  B.call fb ~dst:n "read" [ const 0; Var bufp; const 8 ];
  (if tainted then B.load fb uid (Sil.Place.Lderef (Var bufp))
   else B.call fb ~dst:uid "getpid" []);
  B.call fb ~dst:r "setuid" [ Var uid ];
  B.halt fb;
  B.seal fb;
  (B.build pb ~entry:"main", buf, uid)

let setuid_loc prog =
  match
    List.find_map
      (fun ((loc, _, target, _) :
             Sil.Loc.t * _ * Sil.Instr.call_target * Sil.Operand.t list) ->
        match target with
        | Sil.Instr.Direct "setuid" -> Some loc
        | _ -> None)
      (Sil.Prog.calls prog)
  with
  | Some loc -> loc
  | None -> Alcotest.fail "setuid callsite not found"

let test_taint_source_and_propagation () =
  let prog, buf, uid = rank_prog ~tainted:true () in
  let t = Taint.analyze prog in
  Alcotest.(check bool) "read's buffer object is tainted" true
    (Taint.local_tainted t ~fname:"main" ~vid:buf.vid);
  Alcotest.(check bool) "the load from it is tainted" true
    (Taint.var_tainted_at t (setuid_loc prog) uid);
  Alcotest.(check bool) "no all-tainted collapse" false
    (Taint.tainted_everything t);
  let prog, _, uid = rank_prog ~tainted:false () in
  let t = Taint.analyze prog in
  Alcotest.(check bool) "a syscall result stays untainted" false
    (Taint.var_tainted_at t (setuid_loc prog) uid)

(* The setuid callsite's pos-0 rank in an enriched bundle, plus whether
   any pre-resolution record covers it. *)
let setuid_slot (p : Bastion.Api.protected) =
  List.find_map
    (fun (cm : Bastion.Instrument.callsite_meta) ->
      if cm.cm_sysno = Some (Kernel.Syscalls.number "setuid") then
        Some
          ( Option.bind
              (Hashtbl.find_opt p.slot_ranks cm.cm_id)
              (List.assoc_opt 0),
            Hashtbl.mem p.pre_resolved cm.cm_id
            || Hashtbl.mem p.pre_resolved_ctx cm.cm_id )
      else None)
    p.inst.callsites

let test_taint_mutation_flips_rank () =
  let enrich ~tainted =
    Pre.enrich (Bastion.Api.protect (let p, _, _ = rank_prog ~tainted () in p))
  in
  (match setuid_slot (enrich ~tainted:false) with
  | Some (Some false, false) -> ()
  | Some (rank, pre) ->
    Alcotest.failf "kernel-derived slot: rank=%s pre=%b"
      (match rank with
      | Some b -> string_of_bool b
      | None -> "unranked")
      pre
  | None -> Alcotest.fail "setuid callsite not found");
  match setuid_slot (enrich ~tainted:true) with
  | Some (Some true, false) -> ()
  | Some (Some false, _) ->
    Alcotest.fail "seeded tainted source did not flip the slot rank"
  | Some (_, true) ->
    Alcotest.fail "tainted slot was pre-resolved (the veto is broken)"
  | Some (None, _) -> Alcotest.fail "tainted slot lost its rank"
  | None -> Alcotest.fail "setuid callsite not found"

(* --- runtime: per-context resolution and its fallback ---------------- *)

(* A wrapper whose two callers pass different constants: the slot joins
   to Top (no plain record) but resolves per caller. *)
let ctx_prog () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  let fb = B.func pb "set_id" ~params:[ ("uid", i64) ] in
  let r = B.local fb "r" i64 in
  B.call fb ~dst:r "setuid" [ Var (B.param fb 0) ];
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  B.call fb "set_id" [ const 1000 ];
  B.call fb "set_id" [ const 0 ];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let test_ctx_resolution_hits () =
  let p = Pre.enrich (Bastion.Api.protect (ctx_prog ())) in
  Alcotest.(check int) "no plain record (two caller constants)" 0
    (Hashtbl.length p.pre_resolved);
  Alcotest.(check int) "one per-context record" 1
    (Hashtbl.length p.pre_resolved_ctx);
  let triples = Hashtbl.fold (fun _ l _ -> l) p.pre_resolved_ctx [] in
  Alcotest.(check int) "one constant per caller" 2 (List.length triples);
  let session = Bastion.Api.launch p () in
  Testlib.check_exit (Machine.run session.machine);
  Alcotest.(check int) "both traps resolved against the caller frame" 2
    (Bastion.Monitor.ctx_resolved_hits session.monitor);
  Alcotest.(check int) "no plain static hits" 0
    (Bastion.Monitor.pre_resolved_hits session.monitor)

let test_ctx_unlisted_caller_falls_back () =
  let p = Pre.enrich (Bastion.Api.protect (ctx_prog ())) in
  (* Drop one caller's constant: that trap must fall back to the full
     dynamic path (and still pass), not get denied. *)
  let tbl = Hashtbl.copy p.pre_resolved_ctx in
  Hashtbl.iter
    (fun id (triples : (int * int * int64) list) ->
      match triples with
      | first :: _ :: _ -> Hashtbl.replace tbl id [ first ]
      | _ -> Alcotest.fail "expected two caller triples")
    p.pre_resolved_ctx;
  let p = { p with pre_resolved_ctx = tbl } in
  let session = Bastion.Api.launch p () in
  Testlib.check_exit (Machine.run session.machine);
  Alcotest.(check int) "only the listed caller resolves statically" 1
    (Bastion.Monitor.ctx_resolved_hits session.monitor)

(* --- runtime: dead-site denial --------------------------------------- *)

let dead_prog () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.global pb "g_flag" i64 Sil.Prog.Zero;
  let fb = B.func pb "main" ~params:[] in
  let f = B.local fb "f" i64 in
  let r = B.local fb "r" i64 in
  B.load fb f (Sil.Place.Lglobal "g_flag");
  B.branch fb (Var f) "arm" "done";
  B.block fb "arm";
  B.call fb ~dst:r "setuid" [ const 0 ];
  B.jump fb "done";
  B.block fb "done";
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let poke_at (m : Machine.t) func action =
  let fired = ref false in
  m.on_instr <-
    Some
      (fun m (loc : Sil.Loc.t) ->
        if (not !fired) && String.equal loc.func func then begin
          fired := true;
          action m
        end)

let test_dead_site_recorded_and_benign () =
  let p = Pre.enrich (Bastion.Api.protect (dead_prog ())) in
  Alcotest.(check int) "the guarded callsite is recorded dead" 1
    (Hashtbl.length p.dead_sites);
  let session = Bastion.Api.launch p () in
  Testlib.check_exit (Machine.run session.machine)

let test_dead_site_trap_denied () =
  let p = Pre.enrich (Bastion.Api.protect (dead_prog ())) in
  let session = Bastion.Api.launch p () in
  let m = session.machine in
  (* Flip the branch flag in real memory before main reads it: the
     machine walks into the provably-dead arm and the trap there must
     be denied outright, whatever the arguments look like. *)
  poke_at m "main" (fun m -> Machine.poke m (Machine.global_address m "g_flag") 1L);
  Testlib.check_fault (Machine.run m)
    (Testlib.is_monitor_kill ~context:"argument-integrity")
    "argument-integrity"

(* --- runtime: the taint cheap path ----------------------------------- *)

(* A global bound to setuid whose value is dynamic (stored from getpid)
   but untainted: ranked, cheap-path eligible, recipe = global address. *)
let cheap_prog () =
  let pb = B.program () in
  Kernel.Syscalls.declare_stubs pb;
  B.global pb "g_uid" i64 Sil.Prog.Zero;
  let fb = B.func pb "apply" ~params:[] in
  let r = B.local fb "r" i64 in
  B.call fb ~dst:r "setuid" [ Global "g_uid" ];
  B.ret fb None;
  B.seal fb;
  let fb = B.func pb "main" ~params:[] in
  let u = B.local fb "u" i64 in
  B.call fb ~dst:u "getpid" [];
  B.store fb (Sil.Place.Lglobal "g_uid") (Var u);
  B.call fb "apply" [];
  B.halt fb;
  B.seal fb;
  B.build pb ~entry:"main"

let launch_cheap ?(taint_cheap_path = true) () =
  let p = Pre.enrich (Bastion.Api.protect (cheap_prog ())) in
  Bastion.Api.launch
    ~monitor_config:
      { Bastion.Monitor.default_config with taint_cheap_path }
    p ()

let test_cheap_path_verifies_benign () =
  let session = launch_cheap () in
  Testlib.check_exit (Machine.run session.machine);
  let tainted, untainted = Bastion.Monitor.ai_rank_stats session.monitor in
  Alcotest.(check (pair int int)) "one untainted ranked check" (0, 1)
    (tainted, untainted)

let test_cheap_path_disabled_same_rank_counts () =
  let session = launch_cheap ~taint_cheap_path:false () in
  Testlib.check_exit (Machine.run session.machine);
  let tainted, untainted = Bastion.Monitor.ai_rank_stats session.monitor in
  Alcotest.(check (pair int int)) "rank split unchanged without cheap path"
    (0, 1) (tainted, untainted)

let test_cheap_path_detects_corruption () =
  List.iter
    (fun taint_cheap_path ->
      let session = launch_cheap ~taint_cheap_path () in
      let m = session.machine in
      poke_at m "apply" (fun m ->
          Machine.poke m (Machine.global_address m "g_uid") 999L);
      Testlib.check_fault (Machine.run m)
        (Testlib.is_monitor_kill ~context:"argument-integrity")
        "argument-integrity")
    [ true; false ]

let suites =
  [
    ( "static-v2",
      [
        QCheck_alcotest.to_alcotest prop_sccp_refines_constprop;
        Alcotest.test_case "site_dead beats call-graph reachability" `Quick
          test_sccp_site_dead_beats_reachability;
        Alcotest.test_case "taint sources and propagation" `Quick
          test_taint_source_and_propagation;
        Alcotest.test_case "seeded tainted source flips the slot rank" `Quick
          test_taint_mutation_flips_rank;
      ] );
    ( "static-v2-runtime",
      [
        Alcotest.test_case "per-context resolution hits" `Quick
          test_ctx_resolution_hits;
        Alcotest.test_case "unlisted caller falls back to the full path" `Quick
          test_ctx_unlisted_caller_falls_back;
        Alcotest.test_case "dead site recorded, benign run unaffected" `Quick
          test_dead_site_recorded_and_benign;
        Alcotest.test_case "trap at a dead site is denied" `Quick
          test_dead_site_trap_denied;
        Alcotest.test_case "cheap path verifies a benign untainted slot" `Quick
          test_cheap_path_verifies_benign;
        Alcotest.test_case "cheap path off: same rank split" `Quick
          test_cheap_path_disabled_same_rank_counts;
        Alcotest.test_case "corrupted untainted slot denied on both paths"
          `Quick test_cheap_path_detects_corruption;
      ] );
  ]
